//! Figures 7, 8, 10: communication analyses.

use sudc_core::analysis::comms;
use sudc_units::{GigabitsPerSecond, Watts};

use crate::format::{ratio, table};

/// Fig. 7: TCO vs. provisioned ISL capacity for 0.5/4/10 kW SµDCs.
#[must_use]
pub fn fig7() -> String {
    let rates: Vec<GigabitsPerSecond> = [0.0, 5.0, 10.0, 25.0, 50.0, 100.0, 200.0, 400.0]
        .iter()
        .map(|&r| GigabitsPerSecond::new(r))
        .collect();
    let powers = [
        Watts::new(500.0),
        Watts::from_kilowatts(4.0),
        Watts::from_kilowatts(10.0),
    ];
    let mut rows = Vec::new();
    let curves: Vec<Vec<(GigabitsPerSecond, f64)>> = powers
        .iter()
        .map(|&p| comms::tco_vs_isl(p, &rates).expect("sweep is valid"))
        .collect();
    for (i, rate) in rates.iter().enumerate() {
        rows.push(vec![
            format!("{}", rate.value()),
            ratio(curves[0][i].1),
            ratio(curves[1][i].1),
            ratio(curves[2][i].1),
        ]);
    }
    format!(
        "Fig. 7: TCO vs ISL capacity (relative to no-ISL design of same power)\n{}",
        table(&["ISL (Gbit/s)", "500 W", "4 kW", "10 kW"], &rows)
    )
}

/// Fig. 8: ISL rates required to saturate RTX 3090 payloads per application.
#[must_use]
pub fn fig8() -> String {
    let powers = [
        Watts::new(500.0),
        Watts::from_kilowatts(2.0),
        Watts::from_kilowatts(4.0),
        Watts::from_kilowatts(10.0),
    ];
    let tbl = comms::isl_saturation_table(&powers);
    let rows: Vec<Vec<String>> = tbl
        .iter()
        .map(|row| {
            let mut cells = vec![row.workload.to_string()];
            for (_, rate) in &row.requirements {
                cells.push(format!("{:.1}", rate.value()));
            }
            cells
        })
        .collect();
    format!(
        "Fig. 8: ISL rate (Gbit/s) to saturate compute, per application\n{}",
        table(&["application", "0.5 kW", "2 kW", "4 kW", "10 kW"], &rows)
    )
}

/// Fig. 10: TCO vs. compute energy efficiency for a 4 kW SµDC under
/// different compression algorithms.
#[must_use]
pub fn fig10() -> String {
    let scalars = [1.0, 2.0, 5.0, 10.0, 50.0, 100.0, 1000.0];
    let series =
        comms::compression_impact(Watts::from_kilowatts(4.0), &scalars).expect("sweep is valid");
    let mut headers = vec!["scalar".to_string()];
    for s in &series {
        headers.push(s.compression.to_string());
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = scalars
        .iter()
        .enumerate()
        .map(|(i, &sc)| {
            let mut row = vec![format!("{sc}")];
            for s in &series {
                row.push(ratio(s.points[i].1));
            }
            row
        })
        .collect();
    format!(
        "Fig. 10: TCO vs energy efficiency under compression (relative to uncompressed @ 1x)\n{}",
        table(&header_refs, &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_covers_three_sizes() {
        let f = fig7();
        assert!(f.contains("500 W") && f.contains("10 kW"));
    }

    #[test]
    fn fig8_lists_all_applications() {
        let f = fig8();
        assert!(f.contains("Traffic Monitoring"));
        assert!(f.contains("Panoptic Segmentation"));
    }

    #[test]
    fn fig10_has_all_algorithms() {
        let f = fig10();
        assert!(f.contains("CCSDS 121"));
        assert!(f.contains("neural quasi-lossless"));
    }
}
