//! Closed-loop health plane (extension): failure detection, degraded-mode
//! routing, and what closing the recovery loop buys under chaos.
//!
//! One report, four parts. First, the detector contract: the heartbeat
//! lease, the SUSPECT/DEAD thresholds, and the readmission probation it
//! lowers onto the sim's tick clock. Second, the controller-on vs
//! controller-off grid: every chaos campaign run twice at equal spares
//! with common random numbers — the availability and freshness-SLO gap
//! between the arms is exactly the value of the closed loop, and the
//! detection-latency and false-suspicion columns price the detector
//! itself. Third, degraded-mode routing: a recorded health run's verdict
//! stream becomes a `PoolTimeline`, whose per-block pool fractions
//! re-price the router's orbit-vs-ground placement. Fourth, the audit
//! loop: the recorded `BusLog` replayed through the router-facing
//! summary (`RoutedLoad::try_replay_from_log`) byte-equal to the live
//! aggregation.
//!
//! Every number is a pure function of the seeds and model constants, so
//! the bytes are identical at any worker count; CI diffs `--jobs 1/2/8`
//! outputs against each other and the committed `results/health.txt`
//! snapshot, and separately checks that disabling the controller leaves
//! every other snapshot untouched.

use sudc_chaos::{Campaign, HealthReport};
use sudc_health::{HealthConfig, PoolTimeline};
use sudc_par::json::ToJson;
use sudc_router::{ReplayReport, RoutedLoad, Router, RouterConfig, StreamConfig, Tier};
use sudc_sim::{SimConfig, DEFAULT_SEED};
use sudc_units::Seconds;

use crate::format::{percent, table};

/// Cold spares installed in every grid cell (equal across arms).
const SPARES: u32 = 4;

/// Simulated span of every run, seconds (env `SUDC_HEALTH_DURATION_S`
/// overrides; CI uses the default).
fn duration() -> Seconds {
    let secs = std::env::var("SUDC_HEALTH_DURATION_S")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(3600.0);
    Seconds::new(secs)
}

/// Replications per arm (env `SUDC_HEALTH_REPS` overrides).
fn reps() -> u32 {
    std::env::var("SUDC_HEALTH_REPS")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .filter(|v| *v > 0)
        .unwrap_or(4)
}

/// Ext. K: the closed-loop health plane under chaos.
#[must_use]
pub fn ext_health() -> String {
    let duration = duration();
    let reps = reps();
    let contract = HealthConfig::standard();

    // --- part 1: the detector contract ------------------------------
    let lowered = contract
        .try_lower(0.1)
        .expect("standard contract lowers on the grid tick");
    let contract_lines = format!(
        "  lease {} s ({} ticks at 0.1 s)  suspect after {} missed  dead after {} missed\n  \
         readmission after {} on-time leases  detection-latency floor {} s",
        contract.lease_s,
        lowered.lease_ticks,
        contract.suspect_missed,
        contract.dead_missed,
        contract.probation_leases,
        // Silence is measured from the last heartbeat, up to one lease
        // before the failure.
        contract.lease_s * f64::from(contract.dead_missed - 1),
    );

    // --- part 2: controller-on vs controller-off grid ----------------
    let report = HealthReport::run(duration, SPARES, reps, DEFAULT_SEED);
    let rows: Vec<Vec<String>> = report
        .cells
        .iter()
        .map(|c| {
            vec![
                c.campaign.to_string(),
                if c.closed_loop { "on" } else { "off" }.to_string(),
                percent(c.availability),
                percent(c.slo_attainment),
                format!("{}", c.detections),
                format!("{}", c.promotions),
                format!("{:.0}", c.detection_latency_mean_s),
                percent(c.false_suspicion_rate),
            ]
        })
        .collect();
    let gains: Vec<String> = Campaign::suite(duration)
        .iter()
        .map(|c| {
            let gain = report.availability_gain(c.name).unwrap_or(0.0);
            format!("  {:<18} {:+.4}", c.name, gain)
        })
        .collect();

    // --- part 3: degraded-mode routing from observed verdicts ---------
    let cfg = Campaign::independent(duration)
        .apply(&SimConfig::reference_operations(duration))
        .with_health(contract);
    // A replication seed under which the independent campaign actually
    // kills nodes inside the horizon (the default seed draws a
    // fault-free run, which would make the degradation demo trivial).
    let (trace, log) = sudc_sim::run_recorded(&cfg, 9);
    let timeline = PoolTimeline::try_from_log(&log, cfg.required)
        .expect("recorded log yields a pool timeline");
    let mut stream = StreamConfig::new(20_000, 0x5bdc_2026, 1.4 * 30.0);
    stream.block = 2048;
    stream.queue_capacity = 2048;
    let fractions = timeline
        .try_fractions(stream.blocks() as usize)
        .expect("at least one block");
    let full = Router::reference().route_stream(&stream);
    let degraded = Router::new(
        RouterConfig::reference()
            .try_with_degraded_pools(&fractions)
            .expect("observed fractions are valid"),
    )
    .route_stream(&stream);
    let sudc = Tier::OrbitalSudc.index();
    let degraded_lines = format!(
        "  detections {}  promotions {}  min alive {}/{} nodes  mean pool {}\n  \
         SuDC placements {} -> {}  acceptance {} -> {}",
        trace.detections,
        trace.promotions,
        timeline.min_alive(),
        cfg.required,
        percent(fractions.iter().sum::<f64>() / fractions.len() as f64),
        full.stats.tier_counts[sudc],
        degraded.stats.tier_counts[sudc],
        percent(full.stats.acceptance_rate()),
        percent(degraded.stats.acceptance_rate()),
    );

    // --- part 4: the record -> replay audit loop ----------------------
    let load = RoutedLoad::from_outcome(&degraded);
    let audit_duration = Seconds::new(1800.0);
    let (live_trace, audit_log) = load
        .try_record(audit_duration, DEFAULT_SEED, None)
        .expect("recording run");
    let live = ReplayReport::try_from_traces("nominal", load.sudc_share, vec![live_trace])
        .expect("live audit");
    let audited = load
        .try_replay_from_log(audit_duration, None, &audit_log)
        .expect("from-log audit");
    let audit_line = format!(
        "  {} recorded samples  live == replayed audit: {}  SLO attainment {}",
        audit_log.records(),
        live == audited,
        percent(audited.slo_attainment),
    );

    format!(
        "Ext. K: closed-loop health plane ({} s simulated, {} reps per arm, {} spares)\n\n\
         detector contract\n{}\n\n\
         controller-off vs controller-on, per campaign\n{}\n\n\
         closed-loop availability gain (on minus off)\n{}\n\n\
         degraded-mode routing from the observed pool (independent campaign)\n{}\n\n\
         recorded-log routing audit\n{}\n\n\
         full grid (JSON)\n{}\n",
        duration.value(),
        reps,
        SPARES,
        contract_lines,
        table(
            &[
                "campaign",
                "loop",
                "availability",
                "SLO",
                "detections",
                "promotions",
                "latency (s)",
                "false rate",
            ],
            &rows,
        ),
        gains.join("\n"),
        degraded_lines,
        audit_line,
        report.to_json().to_string_pretty(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_report_covers_every_part() {
        let out = ext_health();
        for needle in [
            "detector contract",
            "controller-off vs controller-on",
            "availability gain",
            "degraded-mode routing",
            "recorded-log routing audit",
            "live == replayed audit: true",
            "combined",
        ] {
            assert!(out.contains(needle), "missing {needle:?}");
        }
    }
}
