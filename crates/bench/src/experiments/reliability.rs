//! Figures 12, 24–28: thermal trade and reliability analyses.

use sudc_core::analysis::reliability_cost;
use sudc_reliability::availability::NodePool;
use sudc_reliability::softerror;
use sudc_reliability::tid;
use sudc_thermal::Radiator;
use sudc_units::{Kelvin, Watts};

use crate::format::{ratio, table};

/// Fig. 12: radiator area vs. temperature for 0.5/4/10 kW heat loads.
#[must_use]
pub fn fig12() -> String {
    let temps_c = [-10.0, 0.0, 10.0, 20.0, 30.0, 45.0, 60.0, 80.0, 100.0];
    let loads = [
        Watts::new(500.0),
        Watts::from_kilowatts(4.0),
        Watts::from_kilowatts(10.0),
    ];
    let rows: Vec<Vec<String>> = temps_c
        .iter()
        .map(|&c| {
            let t = Kelvin::from_celsius(c);
            let mut row = vec![format!("{c}")];
            for &load in &loads {
                row.push(format!("{:.2}", Radiator::required_area(load, t).value()));
            }
            row
        })
        .collect();
    format!(
        "Fig. 12: radiator area (m^2) vs temperature (double-sided, e=0.86)\n{}",
        table(&["temp (C)", "500 W", "4 kW", "10 kW"], &rows)
    )
}

/// Fig. 24: probability that at least 10 servers work vs. time, for
/// overprovisioning levels n = 10/15/20/30.
#[must_use]
pub fn fig24() -> String {
    let times = [0.0, 0.1, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0];
    let pools = [10u32, 15, 20, 30];
    let rows: Vec<Vec<String>> = times
        .iter()
        .map(|&t| {
            let mut row = vec![format!("{t}")];
            for &n in &pools {
                row.push(ratio(NodePool::new(n, 10).availability(t)));
            }
            row
        })
        .collect();
    let mut report = format!(
        "Fig. 24: P(at least 10 of n servers alive) vs time (units of MTTF)\n{}",
        table(&["t/T", "n=10", "n=15", "n=20", "n=30"], &rows)
    );
    report.push_str("\n99%-degradation times: ");
    for &n in &pools {
        report.push_str(&format!(
            "n={n}: {:.2}T  ",
            NodePool::new(n, 10).time_to_availability(0.01)
        ));
    }
    report.push('\n');
    report
}

/// Fig. 25: expected number of usable servers (capped at 10) vs. time.
#[must_use]
pub fn fig25() -> String {
    let times = [0.0, 0.1, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0];
    let pools = [10u32, 15, 20, 30];
    let rows: Vec<Vec<String>> = times
        .iter()
        .map(|&t| {
            let mut row = vec![format!("{t}")];
            for &n in &pools {
                row.push(format!("{:.2}", NodePool::new(n, 10).expected_capacity(t)));
            }
            row
        })
        .collect();
    format!(
        "Fig. 25: E[min(10, working servers)] vs time (units of MTTF)\n{}",
        table(&["t/T", "n=10", "n=15", "n=20", "n=30"], &rows)
    )
}

/// Fig. 26: COTS TID tolerance vs. technology node.
#[must_use]
pub fn fig26() -> String {
    let rows: Vec<Vec<String>> = tid::dataset()
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{}", r.node_nm),
                r.failure_dose
                    .map_or("no failure".into(), |d| format!("{}", d.value())),
                format!("{}", r.tested_to.value()),
            ]
        })
        .collect();
    format!(
        "Fig. 26: total ionizing dose before failure vs technology node\n{}",
        table(
            &[
                "processor",
                "node (nm)",
                "failure (krad)",
                "tested to (krad)"
            ],
            &rows
        )
    )
}

/// Fig. 27: soft-error impact on ImageNet classifiers (pessimistic bound).
#[must_use]
pub fn fig27() -> String {
    let fault_rates = [0.0, 1e-12, 1e-11, 1e-10, 1e-9, 1e-8];
    let suite = softerror::imagenet_suite();
    let mut headers = vec!["fault rate".to_string()];
    for m in &suite {
        headers.push(m.network.to_string());
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = fault_rates
        .iter()
        .map(|&eps| {
            let mut row = vec![format!("{eps:.0e}")];
            for m in &suite {
                row.push(format!("{:.3}", m.accuracy_under_faults(eps)));
            }
            row
        })
        .collect();
    format!(
        "Fig. 27: ImageNet top-1 accuracy vs per-bit fault rate (pessimistic)\n{}",
        table(&header_refs, &rows)
    )
}

/// Fig. 28: relative TCO of redundancy schemes at 0.5–4 kW equivalent power.
#[must_use]
pub fn fig28() -> String {
    let equivalents = [
        Watts::new(500.0),
        Watts::from_kilowatts(1.0),
        Watts::from_kilowatts(2.0),
        Watts::from_kilowatts(4.0),
    ];
    let groups = reliability_cost::redundancy_tco(&equivalents).expect("sweep is valid");
    let rows: Vec<Vec<String>> = groups
        .iter()
        .map(|g| {
            let mut row = vec![format!("{} kW", g.equivalent_power.as_kilowatts())];
            for (_, tco) in &g.rows {
                row.push(ratio(*tco));
            }
            row
        })
        .collect();
    let scheme_names: Vec<String> = groups[0].rows.iter().map(|(s, _)| s.to_string()).collect();
    let mut headers = vec!["equivalent".to_string()];
    headers.extend(scheme_names);
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    format!(
        "Fig. 28: relative TCO by redundancy scheme\n{}",
        table(&header_refs, &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_reports_four_square_meters_for_4kw_at_45c() {
        let f = fig12();
        let line45 = f
            .lines()
            .find(|l| l.trim_start().starts_with("45"))
            .unwrap();
        assert!(line45.contains("4.0"), "{line45}");
    }

    #[test]
    fn fig24_reports_99_percent_times() {
        let f = fig24();
        assert!(f.contains("99%-degradation times"));
        assert!(f.contains("n=30"));
    }

    #[test]
    fn fig25_starts_at_full_capacity() {
        let f = fig25();
        let first = f.lines().nth(3).unwrap();
        assert!(first.contains("10.00"), "{first}");
    }

    #[test]
    fn fig26_contains_modern_nodes() {
        assert!(fig26().contains("14"));
    }

    #[test]
    fn fig27_has_all_classifiers() {
        let f = fig27();
        assert!(f.contains("ResNet-50") && f.contains("VGG-16"));
    }

    #[test]
    fn fig28_lists_schemes() {
        let f = fig28();
        for s in ["none", "software", "DMR", "TMR"] {
            assert!(f.contains(s), "missing {s}");
        }
    }
}
