//! Figure 17: accelerator design-space exploration results, plus the
//! mapping-search diagnostics extension (`dse`).

use sudc_accel::dse::{run_full_dse, DseCache, SystemArchitecture};
use sudc_router::{RouterConfig, Tier, APPS};

use crate::format::table;

/// Fig. 17: energy-efficiency improvements of accelerator architectures
/// over the commodity GPU baseline, from the full 7 168-design sweep.
#[must_use]
pub fn fig17() -> String {
    let outcome = run_full_dse();
    let mut rows: Vec<Vec<String>> = outcome
        .networks
        .iter()
        .map(|n| {
            vec![
                n.network.to_string(),
                format!(
                    "{:.1}",
                    n.improvement(SystemArchitecture::GlobalAccelerator)
                ),
                format!(
                    "{:.1}",
                    n.improvement(SystemArchitecture::PerNetworkAccelerator)
                ),
                format!(
                    "{:.1}",
                    n.improvement(SystemArchitecture::PerLayerAccelerator)
                ),
            ]
        })
        .collect();
    rows.push(vec![
        "MEAN".to_string(),
        format!(
            "{:.1}",
            outcome.mean_improvement(SystemArchitecture::GlobalAccelerator)
        ),
        format!(
            "{:.1}",
            outcome.mean_improvement(SystemArchitecture::PerNetworkAccelerator)
        ),
        format!(
            "{:.1}",
            outcome.mean_improvement(SystemArchitecture::PerLayerAccelerator)
        ),
    ]);
    format!(
        "Fig. 17: energy-efficiency improvement over RTX 3090 ({} designs; global best: {})\n{}",
        outcome.designs_evaluated,
        outcome.global_best,
        table(&["network", "global", "per-network", "per-layer"], &rows)
    )
}

/// Extension: mapping-search diagnostics for the full sweep — search-space
/// accounting, pruning and memoization effectiveness, per-layer engine
/// winners, the incremental-DSE replay cache, and what the measured
/// per-application improvements do to the router's orbital pricing.
#[must_use]
pub fn ext_dse() -> String {
    let mut cache = DseCache::new();
    let outcome = cache.run_full();
    // A second identical sweep must replay from the cache.
    let replayed = cache.run_full();
    assert_eq!(replayed, outcome, "cache replay must be bit-identical");

    let mut out = String::new();
    let s = &outcome.stats;
    out.push_str(&format!(
        "Per-layer mapping search over {} designs x {} engines (global best: {} [{}])\n",
        outcome.designs_evaluated,
        outcome.engines_evaluated,
        outcome.global_best,
        outcome.global_engine
    ));
    out.push_str(&format!(
        "  schedules: {} evaluated, {} pruned (prune rate {:.1}%)\n",
        s.schedules_evaluated,
        s.schedules_pruned,
        100.0 * s.prune_rate()
    ));
    out.push_str(&format!(
        "  layer memo: {} shape searches, {} memo hits (memo hit rate {:.1}%), {} unique shapes / {} layers\n",
        s.shape_searches,
        s.memo_hits,
        100.0 * s.memo_hit_rate(),
        s.unique_shapes,
        s.total_layers
    ));
    out.push_str(&format!(
        "  incremental-DSE replay: {} lookups, {} hits (hit rate {:.0}%)\n",
        cache.lookups(),
        cache.hits(),
        100.0 * cache.hit_rate()
    ));

    let mut engine_counts = std::collections::BTreeMap::new();
    for n in &outcome.networks {
        for w in &n.per_layer_winners {
            *engine_counts.entry(w.engine.to_string()).or_insert(0u32) += 1;
        }
    }
    out.push_str("  per-layer engine winners:");
    for (engine, count) in &engine_counts {
        out.push_str(&format!(" {engine}={count}"));
    }
    out.push('\n');
    out.push_str(&format!(
        "  mean improvement over GPU: global {:.1}x, per-network {:.1}x, per-layer {:.1}x (per-layer/global {:.2}x)\n",
        outcome.mean_improvement(SystemArchitecture::GlobalAccelerator),
        outcome.mean_improvement(SystemArchitecture::PerNetworkAccelerator),
        outcome.mean_improvement(SystemArchitecture::PerLayerAccelerator),
        outcome.mean_improvement(SystemArchitecture::PerLayerAccelerator)
            / outcome.mean_improvement(SystemArchitecture::GlobalAccelerator)
    ));

    // Feed the measured per-application improvements back into the router's
    // orbital pricing: per-network accelerators at a 3x hardware premium.
    let mut improvement = [0.0_f64; APPS];
    for (slot, n) in improvement.iter_mut().zip(&outcome.networks) {
        *slot = n.improvement(SystemArchitecture::PerNetworkAccelerator);
    }
    let premium = 3.0;
    let reference = RouterConfig::reference();
    let repriced = reference
        .clone()
        .try_with_accelerator_repricing(&improvement, premium)
        .expect("measured improvements must reprice");
    let orbital = Tier::OrbitalSudc.index();
    let rows: Vec<Vec<String>> = outcome
        .networks
        .iter()
        .enumerate()
        .map(|(a, n)| {
            vec![
                n.network.to_string(),
                format!("{:.1}", improvement[a]),
                format!("{:.4}", reference.terms[a][orbital].per_gbit_usd),
                format!("{:.4}", repriced.terms[a][orbital].per_gbit_usd),
            ]
        })
        .collect();
    out.push_str(&format!(
        "Router orbital re-pricing with per-network accelerators ({premium}x hardware premium):\n{}",
        table(
            &[
                "network",
                "improvement",
                "orbital $/Gbit (GPU)",
                "orbital $/Gbit (accel)"
            ],
            &rows
        )
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig17_reports_mean_and_design_count() {
        let f = fig17();
        assert!(f.contains("MEAN"));
        assert!(f.contains("7168"));
    }

    #[test]
    fn dse_extension_reports_search_diagnostics_and_repricing() {
        let e = ext_dse();
        assert!(e.contains("prune rate"));
        assert!(e.contains("memo hit rate"));
        assert!(e.contains("replay"));
        assert!(e.contains("orbital $/Gbit"));
    }
}
