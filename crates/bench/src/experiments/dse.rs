//! Figure 17: accelerator design-space exploration results.

use sudc_accel::dse::{run_full_dse, SystemArchitecture};

use crate::format::table;

/// Fig. 17: energy-efficiency improvements of accelerator architectures
/// over the commodity GPU baseline, from the full 7 168-design sweep.
#[must_use]
pub fn fig17() -> String {
    let outcome = run_full_dse();
    let mut rows: Vec<Vec<String>> = outcome
        .networks
        .iter()
        .map(|n| {
            vec![
                n.network.to_string(),
                format!(
                    "{:.1}",
                    n.improvement(SystemArchitecture::GlobalAccelerator)
                ),
                format!(
                    "{:.1}",
                    n.improvement(SystemArchitecture::PerNetworkAccelerator)
                ),
                format!(
                    "{:.1}",
                    n.improvement(SystemArchitecture::PerLayerAccelerator)
                ),
            ]
        })
        .collect();
    rows.push(vec![
        "GEOMEAN".to_string(),
        format!(
            "{:.1}",
            outcome.mean_improvement(SystemArchitecture::GlobalAccelerator)
        ),
        format!(
            "{:.1}",
            outcome.mean_improvement(SystemArchitecture::PerNetworkAccelerator)
        ),
        format!(
            "{:.1}",
            outcome.mean_improvement(SystemArchitecture::PerLayerAccelerator)
        ),
    ]);
    format!(
        "Fig. 17: energy-efficiency improvement over RTX 3090 ({} designs; global best: {})\n{}",
        outcome.designs_evaluated,
        outcome.global_best,
        table(&["network", "global", "per-network", "per-layer"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig17_reports_geomean_and_design_count() {
        let f = fig17();
        assert!(f.contains("GEOMEAN"));
        assert!(f.contains("7168"));
    }
}
