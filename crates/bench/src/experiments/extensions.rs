//! Extension experiments beyond the paper's figures: the latency
//! motivation quantified, cold-vs-hot sparing, cost-driver sensitivity,
//! and design-choice ablations.

use sudc_accel::dse::{run_dse, SystemArchitecture};
use sudc_accel::energy::EnergyTable;
use sudc_compute::precision::Precision;
use sudc_core::analysis::{ablation, latency};
use sudc_core::scenario::Scenario;
use sudc_reliability::availability::DEFAULT_MC_SEED;
use sudc_reliability::mission::{simulate, MissionConfig, SparingPolicy};
use sudc_sscm::sensitivity::tornado;
use sudc_sscm::subsystems::SubsystemCers;
use sudc_units::{Kelvin, Watts};

use crate::format::{percent, ratio, table};

/// Ext. A: bent-pipe vs. in-space processing latency for the Table III
/// suite (the paper's §I latency motivation, quantified).
#[must_use]
pub fn ext_latency() -> String {
    let rows: Vec<Vec<String>> = latency::latency_table(3)
        .into_iter()
        .map(|cmp| {
            vec![
                cmp.workload.to_string(),
                cmp.bent_pipe.map_or("deficit (unbounded)".into(), |l| {
                    format!("{:.1} h", l.value() / 3600.0)
                }),
                format!("{:.1} min", cmp.in_space.value() / 60.0),
                cmp.speedup().map_or("inf".into(), |s| format!("{s:.0}x")),
            ]
        })
        .collect();
    format!(
        "Ext. A: bent-pipe vs in-space latency (3-station ground network)\n{}",
        table(&["application", "bent pipe", "in space", "speedup"], &rows)
    )
}

/// Ext. B: cold vs. hot sparing (Monte-Carlo mission simulation).
#[must_use]
pub fn ext_sparing() -> String {
    let mut rows = Vec::new();
    for n in [15u32, 20, 30] {
        for (name, policy) in [
            ("hot", SparingPolicy::Hot),
            (
                "cold (10% aging)",
                SparingPolicy::Cold { dormant_aging: 0.1 },
            ),
        ] {
            let outcome = simulate(
                MissionConfig {
                    nodes: n,
                    required: 10,
                    duration: 1.0,
                    policy,
                },
                20_000,
                DEFAULT_MC_SEED,
            );
            rows.push(vec![
                format!("{n}"),
                name.to_string(),
                ratio(outcome.full_capability_probability),
                ratio(outcome.mean_full_capability_time),
            ]);
        }
    }
    format!(
        "Ext. B: sparing policy vs availability at t = 1 MTTF (10 powered nodes)\n{}",
        table(
            &[
                "nodes",
                "policy",
                "P(full capability)",
                "mean full-capability time"
            ],
            &rows
        )
    )
}

/// Ext. C: tornado sensitivity of the cost model's drivers (±30 %).
#[must_use]
pub fn ext_tornado() -> String {
    let sized = Scenario::Reference
        .design()
        .expect("reference scenario is valid")
        .size()
        .expect("reference scenario sizes");
    let bars = tornado(&SubsystemCers::sudc_default(), &sized.sscm_inputs(), 0.3);
    let rows: Vec<Vec<String>> = bars
        .iter()
        .map(|b| {
            vec![
                b.driver.to_string(),
                format!("{:.1}", b.low.as_millions()),
                format!("{:.1}", b.high.as_millions()),
                percent(b.relative_swing),
            ]
        })
        .collect();
    format!(
        "Ext. C: cost-driver sensitivity, 4 kW SµDC, ±30% perturbation\n{}",
        table(&["driver", "low ($M)", "high ($M)", "swing"], &rows)
    )
}

/// Ext. D: design-choice ablations (radiator setpoint, launch pricing,
/// FSO efficiency).
#[must_use]
pub fn ext_ablation() -> String {
    let mut out = String::from("Ext. D: design-choice ablations (4 kW SµDC)\n\n");

    let setpoints: Vec<Kelvin> = [15.0, 30.0, 45.0, 60.0, 80.0]
        .iter()
        .map(|&c| Kelvin::from_celsius(c))
        .collect();
    let sweep = ablation::radiator_setpoint_sweep(Watts::from_kilowatts(4.0), &setpoints);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}", p.temperature.as_celsius()),
                format!("{:.2}", p.radiator_area_m2),
                format!("{:.0}", p.pump_power.value()),
                format!("{:.0}", p.eol_load.value()),
            ]
        })
        .collect();
    out.push_str(&table(
        &["setpoint (C)", "radiator (m^2)", "pump (W)", "EOL load (W)"],
        &rows,
    ));

    out.push('\n');
    let launch = ablation::launch_pricing_ablation(Watts::from_kilowatts(4.0))
        .expect("4 kW design is valid");
    let rows: Vec<Vec<String>> = launch
        .iter()
        .map(|(name, tco)| vec![(*name).to_string(), format!("{:.1}", tco.as_millions())])
        .collect();
    out.push_str(&table(&["launch era", "TCO ($M)"], &rows));

    out.push('\n');
    let fso = ablation::fso_efficiency_ablation(Watts::from_kilowatts(4.0), &[1.0, 2.0, 5.0, 10.0])
        .expect("4 kW design is valid");
    let rows: Vec<Vec<String>> = fso
        .iter()
        .map(|(s, tco)| vec![format!("{s}x"), ratio(*tco)])
        .collect();
    out.push_str(&table(&["FSO efficiency", "relative TCO"], &rows));
    out
}

/// Ext. E: the accelerator DSE swept across numeric precisions — how much
/// of the heterogeneity story is really a precision story.
#[must_use]
pub fn ext_precision() -> String {
    // A reduced (1/8) design space keeps the 4-precision sweep fast while
    // preserving the selection behaviour.
    let space: Vec<_> = sudc_accel::design::design_space()
        .into_iter()
        .step_by(8)
        .collect();
    let rows: Vec<Vec<String>> = Precision::all()
        .into_iter()
        .map(|precision| {
            let table = EnergyTable::default().for_precision(precision);
            let outcome = run_dse(&space, &table);
            vec![
                precision.to_string(),
                format!(
                    "{:.1}",
                    outcome.mean_improvement(SystemArchitecture::GlobalAccelerator)
                ),
                format!(
                    "{:.1}",
                    outcome.mean_improvement(SystemArchitecture::PerLayerAccelerator)
                ),
                format!("{:.4}", precision.accuracy_retention()),
            ]
        })
        .collect();
    format!(
        "Ext. E: DSE energy-efficiency gain vs numeric precision ({} designs)
{}",
        space.len(),
        table(
            &[
                "precision",
                "global gain",
                "per-layer gain",
                "accuracy retention"
            ],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_extension_reports_speedups() {
        let e = ext_latency();
        assert!(e.contains("in space"));
        assert!(e.contains('x') || e.contains("inf"));
    }

    #[test]
    fn sparing_extension_covers_both_policies() {
        let e = ext_sparing();
        assert!(e.contains("hot") && e.contains("cold"));
    }

    #[test]
    fn tornado_extension_ranks_drivers() {
        let e = ext_tornado();
        assert!(e.contains("BOL power"));
        assert!(e.contains("compute hardware"));
    }

    #[test]
    fn precision_extension_orders_gains() {
        let e = ext_precision();
        assert!(e.contains("INT8") && e.contains("FP32"));
    }

    #[test]
    fn ablation_extension_has_three_tables() {
        let e = ext_ablation();
        assert!(e.contains("setpoint"));
        assert!(e.contains("launch era"));
        assert!(e.contains("FSO efficiency"));
    }
}
