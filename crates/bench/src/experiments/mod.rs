//! One generator per paper table/figure.
//!
//! Every generator is a pure `fn() -> String` returning the rows the paper
//! reports; [`run_experiment`] dispatches by id (`"fig5"`, `"table3"`, …)
//! and [`all_experiments`] lists everything for the `figures` binary.

mod arch;
mod bus;
mod chaos;
mod comms;
mod cost;
mod dse;
mod extensions;
mod fleet;
mod health;
mod reliability;
mod router;
mod sim;
mod tables;

pub use arch::{fig11, fig15, fig16, fig3, fig9};
pub use bus::ext_bus;
pub use chaos::ext_chaos;
pub use comms::{fig10, fig7, fig8};
pub use cost::{fig4, fig5, fig6};
pub use dse::{ext_dse, fig17};
pub use extensions::{ext_ablation, ext_latency, ext_precision, ext_sparing, ext_tornado};
pub use fleet::{fig19, fig21, fig22, fig23};
pub use health::ext_health;
pub use reliability::{fig12, fig24, fig25, fig26, fig27, fig28};
pub use router::ext_router;
pub use sim::ext_sim;
pub use tables::{table1, table2, table3};

/// All experiment ids in paper order, with a one-line description.
#[must_use]
pub fn all_experiments() -> Vec<(&'static str, &'static str)> {
    vec![
        ("table1", "SSCM-SuDC input parameter derivations"),
        ("table2", "GPU and rad-hard hardware catalog"),
        ("table3", "EO application performance on RTX 3090"),
        (
            "fig3",
            "4 kW SuDC subsystem cost breakdown (two accountings)",
        ),
        ("fig4", "TCO vs lifetime for 0.5/4/10 kW SuDCs"),
        ("fig5", "TCO vs compute power (subsystem breakdown)"),
        ("fig6", "Satellite mass vs compute power"),
        ("fig7", "TCO vs ISL data rate"),
        ("fig8", "ISL rate to saturate compute, per application"),
        ("fig9", "TCO vs processing architecture"),
        ("fig10", "TCO vs energy efficiency under compression"),
        ("fig11", "Satellite vs terrestrial TCO category breakdown"),
        ("fig12", "Radiator area vs temperature"),
        (
            "fig15",
            "TCO vs efficiency scalar (hardware price constant)",
        ),
        ("fig16", "TCO vs efficiency scalar (log hardware pricing)"),
        ("fig17", "Accelerator DSE energy-efficiency improvements"),
        ("fig19", "TCO vs edge filtering rate"),
        (
            "fig21",
            "Collaborative constellation benefit by architecture",
        ),
        ("fig22", "Wright's-law marginal satellite cost"),
        ("fig23", "Distributed vs monolithic fleet TCO"),
        ("fig24", "Availability vs time under overprovisioning"),
        ("fig25", "Expected usable servers vs time"),
        ("fig26", "COTS TID tolerance vs technology node"),
        ("fig27", "Soft-error impact on ImageNet classifiers"),
        ("fig28", "TCO of TMR/DMR/software redundancy"),
        ("extA", "bent-pipe vs in-space latency (extension)"),
        ("extB", "cold vs hot sparing Monte-Carlo (extension)"),
        ("extC", "cost-driver tornado sensitivity (extension)"),
        ("extD", "design-choice ablations (extension)"),
        ("extE", "accelerator DSE vs numeric precision (extension)"),
        (
            "sim",
            "dynamic operations DES: latency, backlog, availability (extension)",
        ),
        (
            "chaos",
            "fault-injection campaigns vs cold spares: resilience report (extension)",
        ),
        (
            "router",
            "online orbit-vs-ground request placement + sim replay (extension)",
        ),
        (
            "bus",
            "QoS pub/sub data plane: topics, lowering, record->replay audit (extension)",
        ),
        (
            "dse",
            "per-layer mapping search: pruning, memoization, router re-pricing (extension)",
        ),
        (
            "health",
            "closed-loop health plane: detection, degraded routing, on/off grid (extension)",
        ),
    ]
}

/// Runs one experiment by id.
///
/// Returns `None` for unknown ids.
#[must_use]
pub fn run_experiment(id: &str) -> Option<String> {
    let report = match id {
        "table1" => table1(),
        "table2" => table2(),
        "table3" => table3(),
        "fig3" => fig3(),
        "fig4" => fig4(),
        "fig5" => fig5(),
        "fig6" => fig6(),
        "fig7" => fig7(),
        "fig8" => fig8(),
        "fig9" => fig9(),
        "fig10" => fig10(),
        "fig11" => fig11(),
        "fig12" => fig12(),
        "fig15" => fig15(),
        "fig16" => fig16(),
        "fig17" => fig17(),
        "fig19" => fig19(),
        "fig21" => fig21(),
        "fig22" => fig22(),
        "fig23" => fig23(),
        "fig24" => fig24(),
        "fig25" => fig25(),
        "fig26" => fig26(),
        "fig27" => fig27(),
        "fig28" => fig28(),
        "extA" => ext_latency(),
        "extB" => ext_sparing(),
        "extC" => ext_tornado(),
        "extD" => ext_ablation(),
        "extE" => ext_precision(),
        "sim" => ext_sim(),
        "chaos" => ext_chaos(),
        "router" => ext_router(),
        "bus" => ext_bus(),
        "dse" => ext_dse(),
        "health" => ext_health(),
        _ => return None,
    };
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_all_dispatch() {
        for (id, _) in all_experiments() {
            let out = run_experiment(id).unwrap_or_else(|| panic!("{id} missing"));
            assert!(!out.trim().is_empty(), "{id} produced no output");
        }
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run_experiment("fig99").is_none());
    }
}
