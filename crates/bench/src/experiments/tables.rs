//! Tables I–III.

use sudc_compute::{hardware, workloads};
use sudc_constellation::EoConstellation;
use sudc_core::design::SuDcDesign;
use sudc_units::Watts;

use crate::format::{self, table};

/// Table I: how each SSCM-SµDC input parameter is derived, shown with the
/// values our pipeline produces for a 4 kW SµDC.
#[must_use]
pub fn table1() -> String {
    let sized = SuDcDesign::builder()
        .compute_power(Watts::from_kilowatts(4.0))
        .build()
        .expect("4 kW design is valid")
        .size()
        .expect("4 kW design sizes");
    let inputs = sized.sscm_inputs();
    let rows = vec![
        vec![
            "Lifetime".into(),
            "mission requirement".into(),
            format!("{}", inputs.lifetime),
        ],
        vec![
            "BOL power".into(),
            "EOL load / (1-d)^L, eclipse oversizing".into(),
            format!("{:.0} W", inputs.bol_power.value()),
        ],
        vec![
            "Dry mass".into(),
            "fixed-point closure over subsystem masses".into(),
            format!("{:.0} kg", inputs.dry_mass.value()),
        ],
        vec![
            "Fuel mass".into(),
            "rocket equation over drag + deorbit dv".into(),
            format!("{:.1} kg", inputs.fuel_mass.value()),
        ],
        vec![
            "Structure mass".into(),
            "18% of dry mass".into(),
            format!("{:.0} kg", inputs.structure_mass.value()),
        ],
        vec![
            "Thermal mass".into(),
            "radiator area x areal mass + pump loop".into(),
            format!("{:.0} kg", inputs.thermal_mass.value()),
        ],
        vec![
            "Power mass".into(),
            "array + battery + distribution".into(),
            format!("{:.0} kg", inputs.power_mass.value()),
        ],
        vec![
            "C&DH rate driver".into(),
            "FSO rate / (FSO:X-band ratio)".into(),
            format!("{:.3} Gbit/s", inputs.rf_equivalent_rate.value()),
        ],
        vec![
            "Pointing".into(),
            "ADCS requirement".into(),
            format!("{} arcsec", inputs.pointing_arcsec),
        ],
        vec![
            "Compute hw cost".into(),
            "units x list price x packaging factor".into(),
            format::musd(inputs.compute_hardware_cost),
        ],
    ];
    format!(
        "Table I: SSCM-SuDC input derivations (4 kW reference design)\n{}",
        table(&["parameter", "derivation", "value"], &rows)
    )
}

/// Table II: the hardware catalog.
#[must_use]
pub fn table2() -> String {
    let rows: Vec<Vec<String>> = hardware::catalog()
        .into_iter()
        .map(|h| {
            vec![
                h.name.to_string(),
                format!("{}", h.tid_tolerance.value()),
                h.price
                    .map_or("N/A".into(), |p| format!("{:.0}", p.value())),
                h.tdp.map_or("N/A".into(), |t| format!("{:.0}", t.value())),
                format!("{}", h.fp32.value()),
                h.tf32.map_or("N/A".into(), |t| format!("{}", t.value())),
            ]
        })
        .collect();
    format!(
        "Table II: processing architectures\n{}",
        table(
            &[
                "System",
                "TID (krad(Si))",
                "Price ($)",
                "TDP (W)",
                "TFLOPs FP32",
                "TFLOPs TF32"
            ],
            &rows
        )
    )
}

/// Table III: application performance on the RTX 3090 plus the number of
/// 4 kW SµDCs needed for a 64-satellite EO constellation.
#[must_use]
pub fn table3() -> String {
    let constellation = EoConstellation::reference(64);
    let four_kw = Watts::from_kilowatts(4.0);
    let rows: Vec<Vec<String>> = workloads::suite()
        .iter()
        .map(|w| {
            vec![
                w.name.to_string(),
                format!("{:.0}", w.gpu_power.value()),
                format!("{:.0}", 100.0 * w.utilization),
                format!("{:.2}", w.inference_time.value()),
                format!("{:.0}", w.efficiency.value()),
                format!("{}", constellation.required_sudcs(w, four_kw)),
            ]
        })
        .collect();
    format!(
        "Table III: application performance on RTX 3090 (64-satellite constellation)\n{}",
        table(
            &[
                "App Name",
                "P(W)",
                "Util(%)",
                "Infer time (s)",
                "kpixel/J",
                "# SuDC"
            ],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reports_all_drivers() {
        let t = table1();
        for key in [
            "BOL power",
            "Fuel mass",
            "C&DH rate driver",
            "Compute hw cost",
        ] {
            assert!(t.contains(key), "missing {key}");
        }
    }

    #[test]
    fn table2_matches_catalog() {
        let t = table2();
        assert!(t.contains("RTX 3090"));
        assert!(t.contains("Virtex-5QV"));
        assert!(t.contains("43989"));
    }

    #[test]
    fn table3_reproduces_sudc_column() {
        let t = table3();
        assert!(t.contains("Panoptic Segmentation"));
        let panoptic_line = t
            .lines()
            .find(|l| l.contains("Panoptic"))
            .expect("panoptic row");
        assert!(panoptic_line.trim_end().ends_with('4'));
    }
}
