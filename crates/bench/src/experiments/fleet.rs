//! Figures 19, 21, 22, 23: constellation-architecture analyses.

use sudc_core::analysis::fleet;
use sudc_sscm::LearningCurve;
use sudc_units::Watts;

use crate::format::{ratio, table};

/// Fig. 19: relative TCO vs. edge filtering rate (4 kW baseline).
#[must_use]
pub fn fig19() -> String {
    let rates = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 2.0 / 3.0, 0.8, 0.9];
    let curve =
        fleet::collaborative_tco(Watts::from_kilowatts(4.0), &rates).expect("4 kW design is valid");
    let rows: Vec<Vec<String>> = curve
        .iter()
        .map(|&(f, tco)| vec![format!("{f:.2}"), ratio(tco)])
        .collect();
    format!(
        "Fig. 19: relative TCO vs edge filtering rate (4 kW baseline)\n{}",
        table(&["filtering rate", "relative TCO"], &rows)
    )
}

/// Fig. 21: collaborative-constellation benefit per payload architecture,
/// using the Fig. 17 DSE outcomes as efficiency factors.
#[must_use]
pub fn fig21() -> String {
    let outcome = sudc_accel::dse::run_full_dse();
    use sudc_accel::dse::SystemArchitecture as Sa;
    let archs = [
        ("Commodity GPU", 1.0),
        (
            "Global accelerator",
            outcome.mean_improvement(Sa::GlobalAccelerator),
        ),
        (
            "Per-layer accelerator",
            outcome.mean_improvement(Sa::PerLayerAccelerator),
        ),
    ];
    let rows: Vec<Vec<String>> =
        fleet::collaborative_sensitivity(Watts::from_kilowatts(4.0), &archs)
            .expect("4 kW design is valid")
            .into_iter()
            .map(|r| {
                vec![
                    r.architecture.clone(),
                    format!("{:.1}x", r.efficiency_factor),
                    ratio(r.unfiltered_tco),
                    ratio(r.filtered_tco),
                    format!("{:.2}x", r.improvement()),
                ]
            })
            .collect();
    format!(
        "Fig. 21: collaborative constellation benefit (cloud filtering, 4 kW)\n{}",
        table(
            &[
                "architecture",
                "efficiency",
                "TCO (f=0)",
                "TCO (f=2/3)",
                "improvement"
            ],
            &rows
        )
    )
}

/// Fig. 22: Wright's-law marginal satellite cost (b = 0.75).
#[must_use]
pub fn fig22() -> String {
    let units = [1, 2, 5, 10, 20, 50, 100];
    let series = fleet::marginal_cost_curve(
        &[
            Watts::new(500.0),
            Watts::from_kilowatts(4.0),
            Watts::from_kilowatts(10.0),
        ],
        &units,
        LearningCurve::aerospace_default(),
    )
    .expect("sweep is valid");
    let rows: Vec<Vec<String>> = units
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let mut row = vec![format!("{n}")];
            for s in &series {
                row.push(format!("{:.1}", s.points[i].1));
            }
            row
        })
        .collect();
    format!(
        "Fig. 22: marginal satellite cost ($M) vs cumulative units (b = 0.75)\n{}",
        table(&["unit #", "500 W", "4 kW", "10 kW"], &rows)
    )
}

/// Fig. 23: distributed vs. monolithic fleet TCO at a fixed 32 kW target.
#[must_use]
pub fn fig23() -> String {
    let ks = [1, 2, 3, 4, 6, 8, 12, 16];
    let ratios = [0.65, 0.70, 0.75, 0.80, 0.85];
    let series =
        fleet::distributed_tco(Watts::from_kilowatts(32.0), &ks, &ratios).expect("sweep is valid");
    let mut headers = vec!["# SuDCs".to_string()];
    for s in &series {
        headers.push(format!("b={}", s.progress_ratio));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows: Vec<Vec<String>> = ks
        .iter()
        .enumerate()
        .map(|(i, &k)| {
            let mut row = vec![format!("{k}")];
            for s in &series {
                row.push(ratio(s.points[i].1));
            }
            row
        })
        .collect();
    let mut optimal = vec!["OPTIMAL".to_string()];
    for s in &series {
        optimal.push(format!("{}", s.optimal_satellites));
    }
    rows.push(optimal);
    format!(
        "Fig. 23: fleet TCO vs # of SuDCs at 32 kW target (relative to monolith)\n{}",
        table(&header_refs, &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig19_is_monotone_decreasing() {
        let f = fig19();
        assert!(f.contains("0.67"));
    }

    #[test]
    fn fig21_reports_improvements() {
        let f = fig21();
        assert!(f.contains("Commodity GPU"));
        assert!(f.contains('x'));
    }

    #[test]
    fn fig22_covers_100_units() {
        assert!(fig22().lines().any(|l| l.trim_start().starts_with("100")));
    }

    #[test]
    fn fig23_reports_optima() {
        let f = fig23();
        assert!(f.contains("OPTIMAL"));
        assert!(f.contains("b=0.65") && f.contains("b=0.85"));
    }
}
