//! Chaos resilience report (extension): the fault-injection campaign
//! grid applied to the paper's reference operations scenario.
//!
//! The table sweeps every standard campaign over a cold-spare ladder and
//! reports delivered work, SLA availability, and TCO per delivered
//! insight; the closing lines answer the overprovisioning question
//! directly — how many cold spares each campaign needs to hold the
//! claim-#4 availability target. The full grid rides along as JSON;
//! because the grid is one seeded order-preserving batch, the bytes are
//! identical at any worker count — CI diffs two thread counts.

use sudc_chaos::{Campaign, ChaosSummary, CLAIM4_AVAILABILITY_TARGET};
use sudc_par::json::ToJson;
use sudc_units::Seconds;

use crate::format::{percent, table};

/// Spare counts swept by the report.
const SPARE_COUNTS: [u32; 4] = [0, 2, 4, 8];

/// Simulated span of every run, seconds (env `SUDC_CHAOS_DURATION_S`
/// overrides; CI uses a small budget).
fn duration() -> Seconds {
    let secs = std::env::var("SUDC_CHAOS_DURATION_S")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(7200.0);
    Seconds::new(secs)
}

/// Replications per grid cell (env `SUDC_CHAOS_REPS` overrides).
fn reps() -> u32 {
    std::env::var("SUDC_CHAOS_REPS")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .filter(|v| *v > 0)
        .unwrap_or(3)
}

/// Ext. G: chaos resilience report — fault campaigns vs cold spares.
#[must_use]
pub fn ext_chaos() -> String {
    let duration = duration();
    let reps = reps();
    let summary = ChaosSummary::run(duration, &SPARE_COUNTS, reps, sudc_sim::DEFAULT_SEED);

    let rows: Vec<Vec<String>> = summary
        .cells
        .iter()
        .map(|c| {
            vec![
                c.campaign.to_string(),
                c.spares.to_string(),
                percent(c.delivered_fraction),
                percent(c.availability),
                format!("{:.0}", c.delivery_p99_s),
                format!("{}", c.shed),
                format!("{}", c.storm_node_kills),
                if c.tco_per_insight_usd.is_finite() {
                    format!("{:.2}", c.tco_per_insight_usd)
                } else {
                    "inf".to_string()
                },
            ]
        })
        .collect();

    let recovery: Vec<String> = Campaign::suite(duration)
        .iter()
        .map(|c| {
            let needed = summary.spares_to_recover(c.name, CLAIM4_AVAILABILITY_TARGET);
            format!(
                "  {:<18} {}",
                c.name,
                needed.map_or_else(
                    || format!("not recovered within {} spares", SPARE_COUNTS[3]),
                    |n| format!("{n} cold spares"),
                ),
            )
        })
        .collect();

    format!(
        "Ext. G: chaos resilience report ({} s simulated, {} reps per cell)\n{}\n\n\
         cold spares to hold availability >= {} (claim #4)\n{}\n\n\
         full grid (JSON)\n{}\n",
        duration.value(),
        reps,
        table(
            &[
                "campaign",
                "spares",
                "delivered",
                "availability",
                "p99 (s)",
                "shed",
                "storm kills",
                "TCO/insight ($)",
            ],
            &rows,
        ),
        CLAIM4_AVAILABILITY_TARGET,
        recovery.join("\n"),
        summary.to_json().to_string_pretty(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_report_covers_every_campaign_and_the_recovery_question() {
        let out = ext_chaos();
        for name in [
            "independent",
            "solar_storm",
            "infant_mortality",
            "isl_flaps",
            "ground_blackouts",
            "combined",
        ] {
            assert!(out.contains(name), "missing {name}");
        }
        assert!(out.contains("cold spares to hold availability"));
        assert!(out.contains("\"claim4_availability_target\""));
    }
}
