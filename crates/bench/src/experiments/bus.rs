//! Data-plane report (extension): the QoS-contracted pub/sub bus the
//! sim kernel publishes its pipeline through.
//!
//! Four parts. First, the standard topic table with each topic's QoS
//! contract — the DDS-flavored policies (`RELIABLE`, `DEADLINE`,
//! `TRANSIENT_LOCAL`, bounded history) the workspace lowers onto its
//! physical delivery models. Second, the lowering itself at the
//! reference tick length: wall-clock contracts become the integer tick
//! quantities (`RecoveryPolicy` fields) the kernel executes. Third,
//! per-topic traffic from recorded runs, nominal and under the
//! `combined` chaos campaign whose queue bounds and deadline *are* the
//! capture/insight contracts. Fourth, the record→replay audit: each
//! run's topic stream is serialized to the compact binary log, decoded,
//! and re-driven through a fresh trace builder, which must reproduce
//! the live `RunTrace` byte for byte.
//!
//! Every number is a pure function of fixed seeds and model constants —
//! no wall-clock — so the bytes are identical at any worker count; CI
//! diffs `--jobs 1/2/8` outputs against each other and against the
//! committed `results/bus.txt` snapshot.

use sudc_bus::{BusConfig, Durability, Reliability, TopicId};
use sudc_chaos::Campaign;
use sudc_sim::{replay, run_on_bus, SimConfig, DEFAULT_SEED};
use sudc_units::Seconds;

use crate::format::table;

/// Simulated span, seconds (env `SUDC_BUS_DURATION_S` overrides; CI
/// uses a small budget).
fn duration() -> Seconds {
    let secs = std::env::var("SUDC_BUS_DURATION_S")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(1800.0);
    Seconds::new(secs)
}

fn reliability(r: Reliability) -> String {
    match r {
        Reliability::BestEffort => "BEST_EFFORT".to_string(),
        Reliability::Reliable { max_retries } => format!("RELIABLE({max_retries})"),
    }
}

fn durability(d: Durability) -> &'static str {
    match d {
        Durability::Volatile => "VOLATILE",
        Durability::TransientLocal => "TRANSIENT_LOCAL",
    }
}

fn deadline(s: f64) -> String {
    if s == 0.0 {
        "-".to_string()
    } else {
        format!("{s:.0} s")
    }
}

fn depth(d: usize) -> String {
    if d == 0 {
        "unbounded".to_string()
    } else {
        d.to_string()
    }
}

/// Ext. I: the QoS-contracted constellation data plane.
#[must_use]
pub fn ext_bus() -> String {
    let topics = BusConfig::standard();
    let duration = duration();

    // The standard topic table and its contracts.
    let topic_rows: Vec<Vec<String>> = topics
        .iter()
        .map(|(id, spec)| {
            vec![
                id.index().to_string(),
                spec.name.clone(),
                reliability(spec.qos.reliability),
                deadline(spec.qos.deadline_s),
                durability(spec.qos.durability).to_string(),
                depth(spec.qos.history_depth),
            ]
        })
        .collect();

    // QoS lowering at the reference tick: the integer quantities the
    // delivery machinery executes (`RecoveryPolicy` arithmetic).
    let tick_s = SimConfig::reference_operations(duration).tick_seconds;
    let lowering_rows: Vec<Vec<String>> = topics
        .iter()
        .map(|(_, spec)| {
            let low = spec
                .qos
                .try_lower(tick_s)
                .expect("standard contracts lower");
            vec![
                spec.name.clone(),
                low.deadline_ticks.to_string(),
                low.max_retries.to_string(),
                depth(low.history_depth),
                if low.transient_local { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();

    // Recorded runs: nominal reference operations, and the combined
    // chaos campaign (whose queue bounds and deadline are the
    // capture/insight contracts lowered onto the recovery policy).
    let nominal_cfg = SimConfig::reference_operations(duration);
    let combined_cfg = Campaign::combined(duration).apply(&nominal_cfg);
    let mut traffic_rows: Vec<Vec<String>> = Vec::new();
    let mut audit_rows: Vec<Vec<String>> = Vec::new();
    for (name, cfg) in [("nominal", &nominal_cfg), ("combined", &combined_cfg)] {
        let run = run_on_bus(cfg, DEFAULT_SEED, true);
        let log = run.log.as_ref().expect("recording run keeps a log");
        let mut row = vec![name.to_string()];
        for (id, _) in topics.iter() {
            row.push(run.stats.published(id).to_string());
        }
        row.push(run.stats.total().to_string());
        traffic_rows.push(row);

        let replayed = replay(cfg, log).expect("recorded log replays");
        audit_rows.push(vec![
            name.to_string(),
            log.records().to_string(),
            log.byte_len().to_string(),
            format!("{:.2}", log.byte_len() as f64 / log.records() as f64),
            if replayed == run.trace { "yes" } else { "NO" }.to_string(),
        ]);
    }

    let topic_name = |id: TopicId| topics.topic(id).expect("registered").name.clone();
    format!(
        "Ext. I: QoS-contracted constellation data plane (seed {DEFAULT_SEED:#x}, {} s simulated)\n\
         standard topic table\n{}\n\n\
         contract lowering at the {tick_s} s reference tick (RecoveryPolicy arithmetic)\n{}\n\n\
         per-topic samples published by the kernel run\n{}\n\n\
         record -> replay audit (binary topic log re-driven through a fresh trace builder)\n{}\n",
        duration.value(),
        table(
            &["id", "topic", "reliability", "deadline", "durability", "history"],
            &topic_rows,
        ),
        table(
            &["topic", "deadline_ticks", "max_retries", "history", "transient_local"],
            &lowering_rows,
        ),
        table(
            &[
                "run",
                &topic_name(sudc_bus::TOPIC_CAPTURES),
                &topic_name(sudc_bus::TOPIC_INSIGHTS),
                &topic_name(sudc_bus::TOPIC_TELEMETRY),
                &topic_name(sudc_bus::TOPIC_FAULTS),
                "total",
            ],
            &traffic_rows,
        ),
        table(
            &["run", "records", "bytes", "bytes/record", "replay == live"],
            &audit_rows,
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_report_has_contracts_lowering_and_audit() {
        let out = ext_bus();
        assert!(out.contains("eo/captures"));
        assert!(out.contains("TRANSIENT_LOCAL"));
        assert!(out.contains("record -> replay audit"));
        // Both audit rows must verify.
        assert!(out.matches("yes").count() >= 2);
        assert!(!out.contains("NO"));
    }
}
