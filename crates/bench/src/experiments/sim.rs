//! Dynamic operations simulation (extension): the discrete-event
//! constellation simulator applied to the paper's reference scenario.
//!
//! Three studies share one report: the no-filtering baseline, the
//! collaborative cloud-filtering constellation (§V), and a cold-spare
//! mission availability run checked against the analytic hot-pool bound.
//! The report embeds the full JSON summaries; because every replication is
//! seeded and order-preserving, the bytes are identical at any worker
//! count — CI diffs two thread counts against each other.

use sudc_par::json::ToJson;
use sudc_reliability::availability::NodePool;
use sudc_sim::{SimConfig, SimSummary, DEFAULT_SEED};
use sudc_units::Seconds;

use crate::format::{percent, table};

/// Simulated operations span, seconds (env `SUDC_SIM_DURATION_S`
/// overrides; CI uses a small budget).
fn duration() -> Seconds {
    let secs = std::env::var("SUDC_SIM_DURATION_S")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(7200.0);
    Seconds::new(secs)
}

/// Replications per scenario (env `SUDC_SIM_REPS` overrides).
fn reps() -> u32 {
    std::env::var("SUDC_SIM_REPS")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .filter(|v| *v > 0)
        .unwrap_or(3)
}

/// Ext. F: dynamic operations simulation — latency, backlog, and
/// availability traces from the discrete-event simulator.
#[must_use]
pub fn ext_sim() -> String {
    let duration = duration();
    let reps = reps();

    let baseline = SimSummary::study(
        &SimConfig::reference_operations(duration),
        reps,
        DEFAULT_SEED,
    );
    let collab = SimSummary::study(
        &SimConfig::collaborative_operations(duration),
        reps,
        DEFAULT_SEED,
    );

    let ops_rows: Vec<Vec<String>> = [("baseline", &baseline), ("collaborative", &collab)]
        .iter()
        .map(|(name, s)| {
            vec![
                (*name).to_string(),
                format!("{:.1}", s.mean_processing_p99),
                format!("{:.0}", s.mean_delivery_p99),
                format!("{:.1}", s.mean_batch_queue),
                format!("{:.0}", s.mean_downlink_backlog),
                percent(s.mean_utilization),
                format!("{:.0}", s.mean_delivered_per_hour),
            ]
        })
        .collect();

    // Mission-scale sparing: simulated end-state capability vs the
    // analytic hot-pool bound at one MTTF.
    let mission_reps = reps * 20;
    let mission = SimSummary::study(
        &SimConfig::cold_spare_mission(20, 10, 0.1, 1.0),
        mission_reps,
        DEFAULT_SEED,
    );
    let analytic_hot = NodePool::new(20, 10).availability(1.0);

    format!(
        "Ext. F: dynamic operations simulation ({} s simulated, {} reps)\n{}\n\n\
         cold-spare mission (20 nodes / 10 required, 10% dormant aging, 1 MTTF, {} reps)\n\
           simulated end-state full capability: {}\n\
           analytic hot-pool bound:             {}\n\n\
         baseline summary (JSON)\n{}\n\ncollaborative summary (JSON)\n{}\n\n\
         cold-spare mission summary (JSON)\n{}\n",
        duration.value(),
        reps,
        table(
            &[
                "scenario",
                "p99 proc (s)",
                "p99 deliver (s)",
                "mean queue",
                "mean backlog",
                "util",
                "insights/h",
            ],
            &ops_rows,
        ),
        mission_reps,
        percent(mission.end_full_fraction),
        percent(analytic_hot),
        baseline.to_json().to_string_pretty(),
        collab.to_json().to_string_pretty(),
        mission.to_json().to_string_pretty(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_report_contains_both_scenarios_and_the_bound() {
        let out = ext_sim();
        assert!(out.contains("baseline"));
        assert!(out.contains("collaborative"));
        assert!(out.contains("analytic hot-pool bound"));
        assert!(out.contains("\"mean_availability\""));
    }
}
