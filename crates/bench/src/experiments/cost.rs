//! Figures 4–6: TCO and mass sweeps.

use sudc_core::analysis::sweeps;
use sudc_units::{Watts, Years};

use crate::format::{ratio, table};

fn kw(x: f64) -> Watts {
    Watts::from_kilowatts(x)
}

/// Fig. 4: TCO vs. lifetime for 0.5/4/10 kW SµDCs, relative to the 500 W
/// SµDC with a one-year lifetime.
#[must_use]
pub fn fig4() -> String {
    let lifetimes: Vec<Years> = (1..=10).map(|y| Years::new(f64::from(y))).collect();
    let series =
        sweeps::tco_vs_lifetime(&[kw(0.5), kw(4.0), kw(10.0)], &lifetimes).expect("sweep is valid");
    let rows: Vec<Vec<String>> = lifetimes
        .iter()
        .enumerate()
        .map(|(i, l)| {
            let mut row = vec![format!("{}", l.value())];
            for s in &series {
                row.push(ratio(s.points[i].1));
            }
            row
        })
        .collect();
    format!(
        "Fig. 4: TCO vs lifetime (relative to 500 W @ 1 yr)\n{}",
        table(&["lifetime (yr)", "500 W", "4 kW", "10 kW"], &rows)
    )
}

/// Fig. 5: TCO vs. compute power with per-subsystem breakdown, relative to
/// the total cost of a 500 W SµDC.
#[must_use]
pub fn fig5() -> String {
    let powers: Vec<Watts> = [0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0]
        .iter()
        .map(|&x| kw(x))
        .collect();
    let points = sweeps::tco_vs_power(&powers).expect("sweep is valid");
    let mut headers = vec!["line".to_string()];
    for p in &points {
        headers.push(format!("{} kW", p.power.as_kilowatts()));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for (li, (line, _)) in points[0].breakdown.iter().enumerate() {
        let mut row = vec![line.to_string()];
        for p in &points {
            row.push(ratio(p.breakdown[li].1));
        }
        rows.push(row);
    }
    let mut total = vec!["TOTAL".to_string()];
    for p in &points {
        total.push(ratio(p.relative_tco));
    }
    rows.push(total);
    format!(
        "Fig. 5: TCO vs compute power (relative to 500 W total)\n{}",
        table(&header_refs, &rows)
    )
}

/// Fig. 6: satellite mass vs. compute power, relative to the 500 W SµDC.
#[must_use]
pub fn fig6() -> String {
    let powers: Vec<Watts> = [0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0]
        .iter()
        .map(|&x| kw(x))
        .collect();
    let points = sweeps::mass_vs_power(&powers).expect("sweep is valid");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.power.as_kilowatts()),
                ratio(p.relative_mass),
                format!("{:.1}%", 100.0 * p.payload_mass_share),
            ]
        })
        .collect();
    format!(
        "Fig. 6: mass vs compute power (relative to 500 W total mass)\n{}",
        table(&["power (kW)", "relative mass", "compute share"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_has_ten_lifetimes() {
        let f = fig4();
        assert_eq!(f.lines().count(), 13);
        assert!(f.contains("10 kW"));
    }

    #[test]
    fn fig5_total_row_is_last() {
        let f = fig5();
        assert!(f
            .trim_end()
            .lines()
            .last()
            .unwrap()
            .trim_start()
            .starts_with("TOTAL"));
    }

    #[test]
    fn fig6_reports_payload_share() {
        assert!(fig6().contains('%'));
    }
}
