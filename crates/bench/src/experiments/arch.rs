//! Figures 3, 9, 11, 15, 16: architecture and breakdown analyses.

use sudc_core::analysis::architecture;
use sudc_terrestrial::PriceScaling;
use sudc_units::Watts;

use crate::format::{percent, ratio, table};

/// Fig. 3: 4 kW SµDC subsystem cost breakdown under the SSCM-SµDC and the
/// SEER-style accounting.
#[must_use]
pub fn fig3() -> String {
    let power = Watts::from_kilowatts(4.0);
    let ours = architecture::cost_breakdown(power).expect("4 kW design is valid");
    let seer = architecture::seer_style_breakdown(power).expect("4 kW design is valid");
    let rows: Vec<Vec<String>> = ours
        .iter()
        .zip(&seer)
        .map(|((line, a), (_, b))| vec![line.to_string(), percent(*a), percent(*b)])
        .collect();
    format!(
        "Fig. 3: 4 kW SuDC cost breakdown (two accountings)\n{}",
        table(&["line", "SSCM-SuDC", "SEER-style"], &rows)
    )
}

/// Fig. 9: TCO and FLOPs per TCO dollar across processing architectures.
#[must_use]
pub fn fig9() -> String {
    let rows: Vec<Vec<String>> = architecture::tco_vs_architecture(Watts::from_kilowatts(4.0))
        .expect("4 kW design is valid")
        .into_iter()
        .map(|r| {
            vec![
                r.hardware.name.to_string(),
                ratio(r.relative_tco),
                format!("{:.0}", r.payload_tflops),
                ratio(r.relative_flops_per_tco_dollar),
            ]
        })
        .collect();
    format!(
        "Fig. 9: TCO vs architecture (4 kW; relative to RTX 3090)\n{}",
        table(
            &[
                "hardware",
                "relative TCO",
                "payload TFLOPS",
                "rel. FLOPS/$TCO"
            ],
            &rows
        )
    )
}

/// Fig. 11: TCO category breakdown, satellite vs. terrestrial models.
#[must_use]
pub fn fig11() -> String {
    let cols = architecture::breakdown_comparison(Watts::from_kilowatts(4.0))
        .expect("4 kW design is valid");
    let categories = ["Servers", "Power", "Networking", "Infrastructure", "Other"];
    let mut headers = vec!["category".to_string()];
    for c in &cols {
        headers.push(c.label.clone());
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = categories
        .iter()
        .map(|cat| {
            let mut row = vec![(*cat).to_string()];
            for col in &cols {
                let share = col
                    .shares
                    .iter()
                    .find(|(name, _)| name == cat)
                    .map_or(0.0, |(_, s)| *s);
                row.push(percent(share));
            }
            row
        })
        .collect();
    format!(
        "Fig. 11: normalized TCO categories\n{}",
        table(&header_refs, &rows)
    )
}

fn efficiency_figure(title: &str, pricing: PriceScaling) -> String {
    let scalars = [1.0, 2.0, 5.0, 10.0, 50.0, 100.0, 200.0, 1000.0];
    let series = architecture::efficiency_scaling(Watts::from_kilowatts(4.0), &scalars, pricing)
        .expect("4 kW design is valid");
    let mut headers = vec!["scalar".to_string()];
    for s in &series {
        headers.push(s.label.clone());
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = scalars
        .iter()
        .enumerate()
        .map(|(i, &sc)| {
            let mut row = vec![format!("{sc}")];
            for s in &series {
                row.push(ratio(s.points[i].1));
            }
            row
        })
        .collect();
    format!("{title}\n{}", table(&header_refs, &rows))
}

/// Fig. 15: relative TCO vs. energy-efficiency scalar, hardware cost
/// invariant.
#[must_use]
pub fn fig15() -> String {
    efficiency_figure(
        "Fig. 15: relative TCO vs energy efficiency (hardware cost invariant)",
        PriceScaling::Constant,
    )
}

/// Fig. 16: same with logarithmic hardware price scaling.
#[must_use]
pub fn fig16() -> String {
    efficiency_figure(
        "Fig. 16: relative TCO vs energy efficiency (log hardware pricing)",
        PriceScaling::Logarithmic,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_has_both_accountings() {
        let f = fig3();
        assert!(f.contains("SSCM-SuDC") && f.contains("SEER-style"));
        assert!(f.contains("Power"));
    }

    #[test]
    fn fig9_lists_three_gpus() {
        let f = fig9();
        for name in ["RTX 3090", "A100", "H100"] {
            assert!(f.contains(name));
        }
    }

    #[test]
    fn fig11_has_five_categories() {
        let f = fig11();
        for cat in ["Servers", "Power", "Networking", "Infrastructure", "Other"] {
            assert!(f.contains(cat));
        }
    }

    #[test]
    fn fig15_and_16_include_in_space_series() {
        assert!(fig15().contains("In-Space"));
        assert!(fig16().contains("On-Earth (LPO)"));
    }
}
