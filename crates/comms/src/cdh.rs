//! Command & data handling (C&DH) subsystem sizing.
//!
//! Per the paper's Table I: "we add FSO mass and power requirements to the
//! mass and power of the Command and Data Handling (C&DH) subsystem", and
//! the C&DH cost driver uses the RF-downscaled data rate.

use sudc_units::{GigabitsPerSecond, Kilograms, Watts};

use crate::fso::FsoLink;
use crate::rf::equivalent_rf_rate;

/// Baseline C&DH avionics mass for a small satellite (flight computer,
/// mass memory, interfaces), kg.
const BASE_CDH_MASS_KG: f64 = 8.0;

/// Baseline C&DH power, W.
const BASE_CDH_POWER_W: f64 = 25.0;

/// Incremental avionics mass per Gbit/s of *RF-equivalent* throughput.
const MASS_PER_RF_GBPS_KG: f64 = 6.0;

/// Incremental avionics power per Gbit/s of *RF-equivalent* throughput.
const POWER_PER_RF_GBPS_W: f64 = 20.0;

/// A sized C&DH subsystem, including the attached FSO terminal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdhDesign {
    /// Provisioned ISL rate.
    pub isl_rate: GigabitsPerSecond,
    /// RF-equivalent rate used as the SSCM cost driver.
    pub rf_equivalent_rate: GigabitsPerSecond,
    /// Avionics mass (excluding the FSO terminal).
    pub avionics_mass: Kilograms,
    /// Avionics power (excluding the FSO terminal).
    pub avionics_power: Watts,
    /// The FSO terminal folded into this subsystem.
    pub fso: FsoLink,
}

impl CdhDesign {
    /// Sizes C&DH for an ISL of `isl_rate` at today's FSO efficiency.
    #[must_use]
    pub fn size(isl_rate: GigabitsPerSecond) -> Self {
        Self::size_with_fso_efficiency(isl_rate, 1.0)
    }

    /// Sizes C&DH assuming FSO power efficiency improved by
    /// `fso_efficiency_scalar` over today.
    #[must_use]
    pub fn size_with_fso_efficiency(
        isl_rate: GigabitsPerSecond,
        fso_efficiency_scalar: f64,
    ) -> Self {
        let rf = equivalent_rf_rate(isl_rate);
        Self {
            isl_rate,
            rf_equivalent_rate: rf,
            avionics_mass: Kilograms::new(BASE_CDH_MASS_KG + MASS_PER_RF_GBPS_KG * rf.value()),
            avionics_power: Watts::new(BASE_CDH_POWER_W + POWER_PER_RF_GBPS_W * rf.value()),
            fso: FsoLink::for_rate_with_efficiency(isl_rate, fso_efficiency_scalar),
        }
    }

    /// Total subsystem mass (avionics + FSO terminal).
    #[must_use]
    pub fn mass(self) -> Kilograms {
        self.avionics_mass + self.fso.mass
    }

    /// Total subsystem power (avionics + FSO terminal).
    #[must_use]
    pub fn power(self) -> Watts {
        self.avionics_power + self.fso.power
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_driver_is_downscaled() {
        let d = CdhDesign::size(GigabitsPerSecond::new(100.0));
        assert!(d.rf_equivalent_rate.value() < 1.0);
    }

    #[test]
    fn totals_include_fso_terminal() {
        let d = CdhDesign::size(GigabitsPerSecond::new(25.0));
        assert!(d.mass() > d.avionics_mass);
        assert!(d.power() > d.avionics_power);
        assert_eq!(d.mass(), d.avionics_mass + d.fso.mass);
        assert_eq!(d.power(), d.avionics_power + d.fso.power);
    }

    #[test]
    fn zero_rate_still_has_base_avionics() {
        let d = CdhDesign::size(GigabitsPerSecond::ZERO);
        assert!(d.avionics_mass.value() > 0.0);
        assert!(d.avionics_power.value() > 0.0);
        assert_eq!(d.fso.power, Watts::ZERO);
    }

    #[test]
    fn fso_efficiency_only_touches_terminal_power() {
        let today = CdhDesign::size(GigabitsPerSecond::new(50.0));
        let future = CdhDesign::size_with_fso_efficiency(GigabitsPerSecond::new(50.0), 8.0);
        assert_eq!(today.avionics_power, future.avionics_power);
        assert!(future.fso.power < today.fso.power);
    }
}
