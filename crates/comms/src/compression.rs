//! On-board compression algorithms that shrink ISL capacity needs (Fig. 10).
//!
//! The paper evaluates three algorithms as upper bounds on TCO savings
//! (decompression power excluded):
//!
//! - **CCSDS 121** — the standard lossless space compressor (< 3 % TCO
//!   saving at today's compute efficiency);
//! - **lossless JPEG 2000** (5 %);
//! - **high-PSNR quasi-lossless neural compression** (8 %).

use sudc_units::GigabitsPerSecond;

/// Compression choices for EO imagery on the EO-satellite → SµDC path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Compression {
    /// No compression: raw sensor data crosses the ISL.
    #[default]
    None,
    /// CCSDS 121.0-B lossless (Rice) compression.
    Ccsds121,
    /// Lossless JPEG 2000.
    Jpeg2000Lossless,
    /// Learned quasi-lossless compression at high PSNR (Bacchus et al.).
    NeuralQuasiLossless,
}

impl Compression {
    /// Achieved compression ratio on multispectral EO imagery.
    ///
    /// Ratios follow the published ranges for each family: Rice-based CCSDS
    /// ~1.6:1 on raw imagery, lossless JPEG 2000 ~2.2:1, and learned
    /// quasi-lossless codecs ~4:1 at high PSNR.
    #[must_use]
    pub fn ratio(self) -> f64 {
        match self {
            Self::None => 1.0,
            Self::Ccsds121 => 1.6,
            Self::Jpeg2000Lossless => 2.2,
            Self::NeuralQuasiLossless => 4.0,
        }
    }

    /// Whether the pixels are bit-exact after decompression.
    #[must_use]
    pub fn is_lossless(self) -> bool {
        !matches!(self, Self::NeuralQuasiLossless)
    }

    /// ISL rate needed after compressing a raw stream of `raw` capacity.
    ///
    /// ```
    /// use sudc_comms::compression::Compression;
    /// use sudc_units::GigabitsPerSecond;
    ///
    /// let needed = Compression::Jpeg2000Lossless.compressed_rate(GigabitsPerSecond::new(22.0));
    /// assert_eq!(needed, GigabitsPerSecond::new(10.0));
    /// ```
    #[must_use]
    pub fn compressed_rate(self, raw: GigabitsPerSecond) -> GigabitsPerSecond {
        raw / self.ratio()
    }

    /// Data volume after compressing `raw` gigabits.
    #[must_use]
    pub fn compressed_volume(self, raw: sudc_units::Gigabits) -> sudc_units::Gigabits {
        raw / self.ratio()
    }

    /// All modeled algorithms, in Fig. 10's order.
    #[must_use]
    pub fn all() -> [Self; 4] {
        [
            Self::None,
            Self::Ccsds121,
            Self::Jpeg2000Lossless,
            Self::NeuralQuasiLossless,
        ]
    }
}

impl core::fmt::Display for Compression {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let name = match self {
            Self::None => "uncompressed",
            Self::Ccsds121 => "CCSDS 121",
            Self::Jpeg2000Lossless => "lossless JPEG 2000",
            Self::NeuralQuasiLossless => "neural quasi-lossless",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ratios_are_ordered_by_sophistication() {
        assert!(Compression::None.ratio() < Compression::Ccsds121.ratio());
        assert!(Compression::Ccsds121.ratio() < Compression::Jpeg2000Lossless.ratio());
        assert!(Compression::Jpeg2000Lossless.ratio() < Compression::NeuralQuasiLossless.ratio());
    }

    #[test]
    fn losslessness_classification() {
        assert!(Compression::Ccsds121.is_lossless());
        assert!(Compression::Jpeg2000Lossless.is_lossless());
        assert!(!Compression::NeuralQuasiLossless.is_lossless());
    }

    #[test]
    fn display_names_are_human_readable() {
        assert_eq!(Compression::Ccsds121.to_string(), "CCSDS 121");
    }

    #[test]
    fn compressed_volume_matches_rate_semantics() {
        let v = Compression::Ccsds121.compressed_volume(sudc_units::Gigabits::new(16.0));
        assert_eq!(v, sudc_units::Gigabits::new(10.0));
    }

    #[test]
    fn default_is_uncompressed() {
        assert_eq!(Compression::default(), Compression::None);
    }

    proptest! {
        #[test]
        fn compression_never_increases_rate(raw in 0.0..1000.0f64) {
            let raw = GigabitsPerSecond::new(raw);
            for algo in Compression::all() {
                prop_assert!(algo.compressed_rate(raw) <= raw);
            }
        }
    }
}
