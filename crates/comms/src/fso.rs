//! Free-space-optics (laser) inter-satellite link terminals.
//!
//! Mass, power, and data rates are anchored to published values for existing
//! commercial systems (Mynaric Condor-class LEO–LEO terminals and LEO–GEO
//! relay terminals), per the paper's Table I derivations.

use sudc_units::{GigabitsPerSecond, Kilograms, Watts};

/// Link topology class, which sets the terminal's size/power envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// LEO-to-LEO crosslink (short range, high rate).
    LeoToLeo,
    /// LEO-to-GEO/MEO relay (long range, lower rate per watt).
    LeoToGeo,
}

/// A cataloged commercial optical terminal.
#[derive(Debug, Clone, PartialEq)]
pub struct FsoTerminal {
    /// Product-style name.
    pub name: &'static str,
    /// Link class.
    pub class: LinkClass,
    /// Peak data rate.
    pub data_rate: GigabitsPerSecond,
    /// Terminal mass.
    pub mass: Kilograms,
    /// Operating power draw.
    pub power: Watts,
}

/// Catalog of existing commercial terminals (Table I: "Optical ISLs mass,
/// power, and data rates are based on published values for existing
/// commercial systems").
#[must_use]
pub fn terminal_catalog() -> Vec<FsoTerminal> {
    vec![
        FsoTerminal {
            name: "Condor-class LEO crosslink",
            class: LinkClass::LeoToLeo,
            data_rate: GigabitsPerSecond::new(100.0),
            mass: Kilograms::new(14.0),
            power: Watts::new(120.0),
        },
        FsoTerminal {
            name: "Compact LEO crosslink",
            class: LinkClass::LeoToLeo,
            data_rate: GigabitsPerSecond::new(10.0),
            mass: Kilograms::new(6.0),
            power: Watts::new(45.0),
        },
        FsoTerminal {
            name: "GEO relay terminal",
            class: LinkClass::LeoToGeo,
            data_rate: GigabitsPerSecond::new(10.0),
            mass: Kilograms::new(35.0),
            power: Watts::new(160.0),
        },
    ]
}

/// Today's LEO–LEO FSO electrical efficiency, watts per Gbit/s (derived from
/// the catalog's Condor-class point: 120 W / 100 Gbit/s plus pointing and
/// electronics overhead).
pub const TODAYS_W_PER_GBPS: f64 = 5.0;

/// Fixed terminal mass (telescope, gimbal, electronics), kg.
const FIXED_TERMINAL_MASS_KG: f64 = 5.0;

/// Rate-proportional terminal mass, kg per Gbit/s.
const MASS_PER_GBPS_KG: f64 = 0.09;

/// A rate-parametric ISL sized for a required capacity.
///
/// # Examples
///
/// ```
/// use sudc_comms::fso::FsoLink;
/// use sudc_units::GigabitsPerSecond;
///
/// let link = FsoLink::for_rate(GigabitsPerSecond::new(25.0));
/// assert!((link.power.value() - 125.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FsoLink {
    /// Provisioned capacity.
    pub data_rate: GigabitsPerSecond,
    /// Electrical power draw.
    pub power: Watts,
    /// Terminal mass.
    pub mass: Kilograms,
}

impl FsoLink {
    /// Sizes a LEO–LEO link for `rate` at today's FSO power efficiency.
    #[must_use]
    pub fn for_rate(rate: GigabitsPerSecond) -> Self {
        Self::for_rate_with_efficiency(rate, 1.0)
    }

    /// Sizes a link for `rate` assuming FSO power efficiency improved by
    /// `efficiency_scalar` (≥ 1) over today — e.g. DARPA Space-BACN-style
    /// terminals (paper §IV-B discussion).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative/non-finite or `efficiency_scalar < 1`.
    #[must_use]
    pub fn for_rate_with_efficiency(rate: GigabitsPerSecond, efficiency_scalar: f64) -> Self {
        assert!(
            rate.is_finite() && rate.value() >= 0.0,
            "ISL rate must be finite and non-negative, got {rate}"
        );
        assert!(
            efficiency_scalar >= 1.0,
            "efficiency scalar must be >= 1, got {efficiency_scalar}"
        );
        let power = Watts::new(rate.value() * TODAYS_W_PER_GBPS / efficiency_scalar);
        let mass = if rate.value() == 0.0 {
            Kilograms::ZERO
        } else {
            Kilograms::new(FIXED_TERMINAL_MASS_KG + MASS_PER_GBPS_KG * rate.value())
        };
        Self {
            data_rate: rate,
            power,
            mass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn catalog_is_nonempty_and_physical() {
        let cat = terminal_catalog();
        assert!(cat.len() >= 3);
        for t in &cat {
            assert!(t.data_rate.value() > 0.0, "{}", t.name);
            assert!(t.mass.value() > 0.0, "{}", t.name);
            assert!(t.power.value() > 0.0, "{}", t.name);
        }
    }

    #[test]
    fn geo_terminals_are_heavier_per_gbps() {
        let cat = terminal_catalog();
        let leo = cat.iter().find(|t| t.class == LinkClass::LeoToLeo).unwrap();
        let geo = cat.iter().find(|t| t.class == LinkClass::LeoToGeo).unwrap();
        let leo_kg_per_gbps = leo.mass.value() / leo.data_rate.value();
        let geo_kg_per_gbps = geo.mass.value() / geo.data_rate.value();
        assert!(geo_kg_per_gbps > leo_kg_per_gbps);
    }

    #[test]
    fn link_power_follows_todays_efficiency() {
        let link = FsoLink::for_rate(GigabitsPerSecond::new(25.0));
        assert!((link.power.value() - 25.0 * TODAYS_W_PER_GBPS).abs() < 1e-12);
    }

    #[test]
    fn efficiency_scalar_reduces_power_not_mass() {
        let base = FsoLink::for_rate(GigabitsPerSecond::new(50.0));
        let future = FsoLink::for_rate_with_efficiency(GigabitsPerSecond::new(50.0), 10.0);
        assert!((future.power.value() - base.power.value() / 10.0).abs() < 1e-9);
        assert_eq!(future.mass, base.mass);
    }

    #[test]
    fn zero_rate_link_is_free() {
        let link = FsoLink::for_rate(GigabitsPerSecond::ZERO);
        assert_eq!(link.power, Watts::ZERO);
        assert_eq!(link.mass, Kilograms::ZERO);
    }

    #[test]
    #[should_panic(expected = "efficiency scalar")]
    fn sub_unity_efficiency_panics() {
        let _ = FsoLink::for_rate_with_efficiency(GigabitsPerSecond::new(1.0), 0.5);
    }

    proptest! {
        #[test]
        fn link_monotone_in_rate(r1 in 0.0..500.0f64, r2 in 0.0..500.0f64) {
            let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
            let l_lo = FsoLink::for_rate(GigabitsPerSecond::new(lo));
            let l_hi = FsoLink::for_rate(GigabitsPerSecond::new(hi));
            prop_assert!(l_lo.power <= l_hi.power);
            prop_assert!(l_lo.mass <= l_hi.mass);
        }
    }
}
