//! ISL capacity required to saturate a compute payload (Fig. 8).
//!
//! A compute payload running an application with energy efficiency `e`
//! (kpixel/J) consumes pixels at `e × P` kpixel/s when drawing `P` watts.
//! The ISL must deliver `bits_per_pixel` for every pixel, so the saturation
//! rate is linear in both the power budget and the application's efficiency
//! — which is why the paper's *most lightweight* (highest kpixel/J)
//! applications set the worst-case ISL requirement.

use sudc_units::{GigabitsPerSecond, KilopixelsPerJoule, Watts};

use crate::compression::Compression;

/// Raw bits per pixel of EO sensor data (12-bit sensels padded to 16-bit
/// transport words).
pub const DEFAULT_BITS_PER_PIXEL: f64 = 12.0;

/// ISL rate that keeps a payload of `budget` watts fully fed when running an
/// application of the given energy efficiency, with `bits_per_pixel` crossing
/// the link per processed pixel.
///
/// # Panics
///
/// Panics if any argument is negative or non-finite.
///
/// # Examples
///
/// ```
/// use sudc_comms::requirements::{saturation_rate, DEFAULT_BITS_PER_PIXEL};
/// use sudc_units::{KilopixelsPerJoule, Watts};
///
/// // Paper: "a 500 W SµDC needs no more than 25 Gbit/s ISL to support even
/// // the most lightweight applications" (Traffic Monitoring, 2597 kpixel/J).
/// let rate = saturation_rate(
///     Watts::new(500.0),
///     KilopixelsPerJoule::new(2597.0),
///     DEFAULT_BITS_PER_PIXEL,
/// );
/// assert!(rate.value() < 25.0);
/// ```
#[must_use]
pub fn saturation_rate(
    budget: Watts,
    efficiency: KilopixelsPerJoule,
    bits_per_pixel: f64,
) -> GigabitsPerSecond {
    assert!(
        budget.is_finite() && budget.value() >= 0.0,
        "power budget must be finite and non-negative, got {budget}"
    );
    assert!(
        efficiency.is_finite() && efficiency.value() >= 0.0,
        "efficiency must be finite and non-negative, got {efficiency}"
    );
    assert!(
        bits_per_pixel.is_finite() && bits_per_pixel >= 0.0,
        "bits per pixel must be finite and non-negative, got {bits_per_pixel}"
    );
    let pixels_per_second = efficiency.value() * 1e3 * budget.value();
    GigabitsPerSecond::new(pixels_per_second * bits_per_pixel / 1e9)
}

/// An ISL provisioning decision: saturation requirement plus compression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IslRequirement {
    /// Raw saturation rate before compression.
    pub raw_rate: GigabitsPerSecond,
    /// Compression applied on the EO-satellite side.
    pub compression: Compression,
    /// Link capacity that must actually be provisioned.
    pub provisioned_rate: GigabitsPerSecond,
}

impl IslRequirement {
    /// Computes the provisioned capacity for a payload/application pair.
    #[must_use]
    pub fn for_payload(
        budget: Watts,
        efficiency: KilopixelsPerJoule,
        compression: Compression,
    ) -> Self {
        let raw = saturation_rate(budget, efficiency, DEFAULT_BITS_PER_PIXEL);
        Self {
            raw_rate: raw,
            compression,
            provisioned_rate: compression.compressed_rate(raw),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lightweight_apps_need_more_bandwidth() {
        let budget = Watts::from_kilowatts(4.0);
        let traffic = saturation_rate(budget, KilopixelsPerJoule::new(2597.0), 12.0);
        let panoptic = saturation_rate(budget, KilopixelsPerJoule::new(20.0), 12.0);
        assert!(traffic.value() > 100.0 * panoptic.value());
    }

    #[test]
    fn five_hundred_watt_worst_case_is_under_25_gbps() {
        // The Fig. 7/8 anchor quoted in the paper text.
        let rate = saturation_rate(
            Watts::new(500.0),
            KilopixelsPerJoule::new(2597.0),
            DEFAULT_BITS_PER_PIXEL,
        );
        assert!(rate.value() < 25.0, "got {rate}");
        assert!(
            rate.value() > 10.0,
            "should still be >10 Gbit/s, got {rate}"
        );
    }

    #[test]
    fn requirement_scales_linearly_with_power() {
        let eff = KilopixelsPerJoule::new(843.0);
        let r1 = saturation_rate(Watts::new(500.0), eff, 12.0);
        let r2 = saturation_rate(Watts::new(10_000.0), eff, 12.0);
        assert!((r2.value() / r1.value() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn compression_shrinks_provisioned_rate() {
        let req = IslRequirement::for_payload(
            Watts::from_kilowatts(4.0),
            KilopixelsPerJoule::new(1168.0),
            Compression::NeuralQuasiLossless,
        );
        assert!((req.provisioned_rate.value() - req.raw_rate.value() / 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power budget")]
    fn negative_budget_panics() {
        let _ = saturation_rate(Watts::new(-1.0), KilopixelsPerJoule::new(1.0), 12.0);
    }

    proptest! {
        #[test]
        fn rate_monotone_in_both_arguments(
            p1 in 0.0..10_000.0f64,
            p2 in 0.0..10_000.0f64,
            e in 1.0..3000.0f64,
        ) {
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let eff = KilopixelsPerJoule::new(e);
            prop_assert!(
                saturation_rate(Watts::new(lo), eff, 12.0)
                    <= saturation_rate(Watts::new(hi), eff, 12.0)
            );
        }
    }
}
