//! Free-space-optics link-budget physics.
//!
//! The rate-parametric sizing in [`crate::fso`] abstracts terminal power as
//! W/Gbit/s; this module provides the underlying physics — transmit power,
//! beam divergence, aperture, range, and receiver sensitivity — so
//! LEO–LEO vs. LEO–GEO trades (and future Space-BACN-class terminals) can
//! be derived rather than cataloged.

use sudc_units::{GigabitsPerSecond, Meters, Watts};

/// Planck's constant, J·s.
const PLANCK: f64 = 6.626_070_15e-34;
/// Speed of light, m/s.
const C: f64 = 2.997_924_58e8;

/// An optical link design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpticalLink {
    /// Optical transmit power.
    pub transmit_power: Watts,
    /// Full-angle beam divergence, radians.
    pub beam_divergence_rad: f64,
    /// Receive aperture diameter.
    pub aperture: Meters,
    /// Carrier wavelength, meters (1550 nm telecom band by default).
    pub wavelength: Meters,
    /// Receiver sensitivity, photons per bit (including coding margin).
    pub photons_per_bit: f64,
    /// Combined optical-path efficiency (pointing, optics, atmosphere).
    pub path_efficiency: f64,
}

impl OpticalLink {
    /// A Condor-class LEO crosslink terminal: ~1 W optical, 12 µrad beam,
    /// 8 cm aperture, 1550 nm, ~500 photons/bit with coding margin.
    #[must_use]
    pub fn leo_crosslink() -> Self {
        Self {
            transmit_power: Watts::new(1.0),
            beam_divergence_rad: 12e-6,
            aperture: Meters::new(0.08),
            wavelength: Meters::new(1550e-9),
            photons_per_bit: 500.0,
            path_efficiency: 0.5,
        }
    }

    /// Energy per photon at the carrier wavelength, J.
    #[must_use]
    pub fn photon_energy(&self) -> f64 {
        PLANCK * C / self.wavelength.value()
    }

    /// Received optical power at `range`.
    ///
    /// Geometric spreading only: the beam grows to `θ·R` diameter and the
    /// aperture captures its area fraction.
    ///
    /// # Panics
    ///
    /// Panics if `range` is not positive.
    #[must_use]
    pub fn received_power(&self, range: Meters) -> Watts {
        assert!(
            range.value() > 0.0,
            "link range must be positive, got {range}"
        );
        let beam_diameter = self.beam_divergence_rad * range.value();
        let capture = (self.aperture.value() / beam_diameter).powi(2).min(1.0);
        self.transmit_power * capture * self.path_efficiency
    }

    /// Achievable data rate at `range` for the receiver's sensitivity.
    ///
    /// ```
    /// use sudc_comms::linkbudget::OpticalLink;
    /// use sudc_units::Meters;
    ///
    /// // A Condor-class terminal sustains ~100 Gbit/s at LEO crosslink
    /// // ranges (a few thousand km).
    /// let rate = OpticalLink::leo_crosslink().achievable_rate(Meters::new(2000e3));
    /// assert!(rate.value() > 50.0 && rate.value() < 500.0);
    /// ```
    #[must_use]
    pub fn achievable_rate(&self, range: Meters) -> GigabitsPerSecond {
        let energy_per_bit = self.photons_per_bit * self.photon_energy();
        let bits_per_second = self.received_power(range).value() / energy_per_bit;
        GigabitsPerSecond::new(bits_per_second / 1e9)
    }

    /// Maximum range sustaining `rate` (inverse of [`Self::achievable_rate`]).
    #[must_use]
    pub fn max_range(&self, rate: GigabitsPerSecond) -> Meters {
        assert!(rate.value() > 0.0, "rate must be positive");
        let energy_per_bit = self.photons_per_bit * self.photon_energy();
        let needed_power = rate.value() * 1e9 * energy_per_bit;
        // received = tx * eff * (D / (theta R))^2  =>  R = (D/theta) sqrt(tx*eff/needed)
        let ratio = (self.transmit_power.value() * self.path_efficiency / needed_power).sqrt();
        Meters::new(self.aperture.value() / self.beam_divergence_rad * ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn leo_crosslink_sustains_100gbps_class_rates() {
        let rate = OpticalLink::leo_crosslink().achievable_rate(Meters::new(2000e3));
        assert!(rate.value() > 50.0, "got {rate}");
    }

    #[test]
    fn geo_relay_range_cuts_the_rate_by_distance_squared() {
        let link = OpticalLink::leo_crosslink();
        let leo = link.achievable_rate(Meters::new(2000e3));
        let geo = link.achievable_rate(Meters::new(40_000e3));
        let expected = (40_000f64 / 2000.0).powi(2);
        assert!((leo.value() / geo.value() - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn capture_fraction_saturates_at_unity() {
        // At very short range the aperture exceeds the beam: no gain > 1.
        let link = OpticalLink::leo_crosslink();
        let p = link.received_power(Meters::new(1.0));
        assert!(p <= link.transmit_power);
    }

    #[test]
    fn rate_and_range_are_inverse() {
        let link = OpticalLink::leo_crosslink();
        let rate = GigabitsPerSecond::new(25.0);
        let range = link.max_range(rate);
        let back = link.achievable_rate(range);
        assert!((back.value() - rate.value()).abs() / rate.value() < 1e-9);
    }

    #[test]
    fn photon_energy_at_1550nm() {
        let e = OpticalLink::leo_crosslink().photon_energy();
        assert!((e - 1.28e-19).abs() < 0.02e-19, "got {e}");
    }

    #[test]
    #[should_panic(expected = "range must be positive")]
    fn zero_range_panics() {
        let _ = OpticalLink::leo_crosslink().received_power(Meters::ZERO);
    }

    proptest! {
        #[test]
        fn rate_monotone_decreasing_in_range(
            r1 in 100e3..50_000e3f64,
            r2 in 100e3..50_000e3f64,
        ) {
            let link = OpticalLink::leo_crosslink();
            let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
            prop_assert!(
                link.achievable_rate(Meters::new(hi)) <= link.achievable_rate(Meters::new(lo))
            );
        }

        #[test]
        fn more_transmit_power_never_hurts(p in 0.1..20.0f64) {
            let mut link = OpticalLink::leo_crosslink();
            let base = link.achievable_rate(Meters::new(2000e3));
            link.transmit_power = Watts::new(p + 1.0);
            link.transmit_power = link.transmit_power.max(Watts::new(1.0));
            prop_assert!(link.achievable_rate(Meters::new(2000e3)) >= base);
        }
    }
}
