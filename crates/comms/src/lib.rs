//! Communications substrate: free-space-optics inter-satellite links (ISLs),
//! command & data handling (C&DH), and compression.
//!
//! The paper extends SSCM with FSO costs: terminal mass and power scale with
//! the provisioned data rate, and the C&DH cost driver uses the FSO rate
//! *downscaled by the FSO/X-band bandwidth ratio* (because SSCM's C&DH CER
//! was regressed against RF-era satellites).
//!
//! - [`fso`] — optical terminal catalog and rate-parametric link sizing;
//! - [`linkbudget`] — the underlying optical link-budget physics;
//! - [`rf`] — the X-band RF baseline used for C&DH downscaling;
//! - [`cdh`] — command & data handling subsystem sizing;
//! - [`compression`] — CCSDS-121, lossless JPEG 2000, and neural
//!   quasi-lossless compressors that shrink required ISL capacity (Fig. 10);
//! - [`requirements`] — ISL capacity needed to saturate a compute payload
//!   (Fig. 8);
//! - [`downlink`] — insight downlink sizing after in-space processing
//!   (Fig. 14's results analyzer).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdh;
pub mod compression;
pub mod downlink;
pub mod fso;
pub mod linkbudget;
pub mod requirements;
pub mod rf;

pub use compression::Compression;
pub use fso::FsoLink;
