//! X-band RF baseline.
//!
//! SSCM's C&DH cost driver was regressed against RF-era satellites, so the
//! paper downscales FSO rates by the FSO/X-band bandwidth ratio before
//! feeding them to the CER ("Failure to do this downscaling results in
//! unreasonably high C&DH cost estimates").

use sudc_units::GigabitsPerSecond;

/// Representative peak X-band downlink rate for a small satellite.
pub const XBAND_PEAK_RATE: GigabitsPerSecond = GigabitsPerSecond::new(0.5);

/// Representative peak commercial FSO crosslink rate.
pub const FSO_PEAK_RATE: GigabitsPerSecond = GigabitsPerSecond::new(100.0);

/// Bandwidth ratio between FSO and X-band RF (~two orders of magnitude).
#[must_use]
pub fn fso_to_xband_ratio() -> f64 {
    FSO_PEAK_RATE.value() / XBAND_PEAK_RATE.value()
}

/// Downscales an FSO data rate to its RF-equivalent C&DH cost driver.
///
/// # Examples
///
/// ```
/// use sudc_comms::rf::equivalent_rf_rate;
/// use sudc_units::GigabitsPerSecond;
///
/// let driver = equivalent_rf_rate(GigabitsPerSecond::new(100.0));
/// assert_eq!(driver, GigabitsPerSecond::new(0.5));
/// ```
#[must_use]
pub fn equivalent_rf_rate(fso_rate: GigabitsPerSecond) -> GigabitsPerSecond {
    fso_rate / fso_to_xband_ratio()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_is_orders_of_magnitude() {
        let r = fso_to_xband_ratio();
        assert!(r >= 100.0, "FSO should be >= 100x X-band, got {r}");
    }

    #[test]
    fn downscaling_is_linear() {
        let a = equivalent_rf_rate(GigabitsPerSecond::new(10.0));
        let b = equivalent_rf_rate(GigabitsPerSecond::new(20.0));
        assert!((b.value() / a.value() - 2.0).abs() < 1e-12);
    }
}
