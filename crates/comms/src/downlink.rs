//! Insight downlink sizing (paper Fig. 14's results analyzer).
//!
//! After in-space processing, "the results are sent to an analyzer, which
//! determines whether the results are 'insights' which should be downlinked
//! to Earth, or whether the results contain little relevant information, in
//! which case they can be discarded." Insights are tiny relative to raw
//! imagery — this module quantifies how much downlink a SµDC still needs,
//! which is the bandwidth argument for in-space processing.

use sudc_units::{GigabitsPerSecond, MegapixelsPerSecond};

/// The downlink product class an application emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InsightKind {
    /// Scalar or per-image labels (classification, regression): bytes per
    /// image.
    Labels,
    /// Bounding boxes / detections: hundreds of bytes per image.
    Detections,
    /// Dense masks, heavily compressible (segmentation): a small fraction
    /// of the pixel volume.
    Masks,
}

impl InsightKind {
    /// Output bits per processed input pixel.
    #[must_use]
    pub fn bits_per_input_pixel(self) -> f64 {
        match self {
            // A few hundred bytes per ~67 Mpixel frame.
            Self::Labels => 3e-5,
            // Tens of kilobytes per frame.
            Self::Detections => 3e-3,
            // 1-bit masks with run-length coding: ~2% of a 12-bit pixel.
            Self::Masks => 0.25,
        }
    }
}

/// Downlink requirement of an in-space processing pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InsightDownlink {
    /// Product class.
    pub kind: InsightKind,
    /// Fraction of processed frames that contain an insight worth sending.
    pub insight_fraction: f64,
}

impl InsightDownlink {
    /// Creates a sizing.
    ///
    /// # Panics
    ///
    /// Panics if `insight_fraction` is not in [0, 1].
    #[must_use]
    pub fn new(kind: InsightKind, insight_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&insight_fraction),
            "insight fraction must be in [0, 1], got {insight_fraction}"
        );
        Self {
            kind,
            insight_fraction,
        }
    }

    /// Downlink rate needed for a processed pixel stream.
    #[must_use]
    pub fn required_rate(&self, processed: MegapixelsPerSecond) -> GigabitsPerSecond {
        let bits_per_second =
            processed.value() * 1e6 * self.kind.bits_per_input_pixel() * self.insight_fraction;
        GigabitsPerSecond::new(bits_per_second / 1e9)
    }

    /// Bandwidth reduction versus downlinking the raw 12-bit pixels.
    #[must_use]
    pub fn reduction_vs_raw(&self) -> f64 {
        12.0 / (self.kind.bits_per_input_pixel() * self.insight_fraction.max(1e-12))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn labels_reduce_bandwidth_by_many_orders_of_magnitude() {
        let d = InsightDownlink::new(InsightKind::Labels, 0.2);
        assert!(d.reduction_vs_raw() > 1e6);
    }

    #[test]
    fn even_dense_masks_cut_an_order_of_magnitude() {
        let d = InsightDownlink::new(InsightKind::Masks, 1.0);
        assert!(d.reduction_vs_raw() > 40.0);
    }

    #[test]
    fn a_constellation_of_insights_fits_an_x_band_downlink() {
        // 64 satellites x ~4 Mpixel/s processed, detections on 30% of frames:
        // the whole constellation's insights fit a fraction of X-band.
        let processed = MegapixelsPerSecond::new(64.0 * 4.0);
        let rate = InsightDownlink::new(InsightKind::Detections, 0.3)
            .required_rate(processed)
            .value();
        assert!(rate < 0.5, "insight downlink {rate} Gbit/s");
        assert!(rate > 0.0);
    }

    #[test]
    fn required_rate_scales_with_throughput() {
        let d = InsightDownlink::new(InsightKind::Masks, 0.5);
        let r1 = d.required_rate(MegapixelsPerSecond::new(10.0));
        let r2 = d.required_rate(MegapixelsPerSecond::new(20.0));
        assert!((r2.value() / r1.value() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "insight fraction")]
    fn out_of_range_fraction_panics() {
        let _ = InsightDownlink::new(InsightKind::Labels, 1.5);
    }

    proptest! {
        #[test]
        fn masks_always_need_more_than_labels(
            frac in 0.01..1.0f64,
            mpx in 0.1..1000.0f64,
        ) {
            let processed = MegapixelsPerSecond::new(mpx);
            let labels = InsightDownlink::new(InsightKind::Labels, frac).required_rate(processed);
            let masks = InsightDownlink::new(InsightKind::Masks, frac).required_rate(processed);
            prop_assert!(masks > labels);
        }
    }
}
