//! Property tests pinning the executor's behavior on degenerate inputs.
//!
//! Empty and single-element slices exercise the inline fast path
//! (`bounds.len() <= 1`), where an off-by-one in chunking would silently
//! drop or duplicate work. Every primitive must match its serial
//! equivalent exactly, at every thread count.

use proptest::prelude::*;
use sudc_par::{par_map_threads, par_max_by, par_reduce_threads, set_threads};

proptest! {
    #[test]
    fn par_map_on_empty_input_is_empty(workers in 1usize..16) {
        let items: Vec<f64> = Vec::new();
        let got = par_map_threads(workers, &items, |_, &x: &f64| x * 2.0);
        prop_assert!(got.is_empty());
    }

    #[test]
    fn par_map_on_single_element_matches_serial(
        workers in 1usize..16,
        x in -1e9..1e9f64,
    ) {
        let got = par_map_threads(workers, &[x], |i, &v| (i, v * 3.0));
        prop_assert_eq!(got, vec![(0usize, x * 3.0)]);
    }

    #[test]
    fn par_reduce_on_empty_input_returns_init(workers in 1usize..16) {
        let items: Vec<u64> = Vec::new();
        let sum = par_reduce_threads(workers, &items, || 7u64, |a, _, &x| a + x, |a, b| a + b);
        prop_assert_eq!(sum, 7);
    }

    #[test]
    fn par_reduce_on_single_element_matches_serial_fold(
        workers in 1usize..16,
        x in 0u64..1_000_000,
    ) {
        let serial = [x].iter().fold(1u64, |a, &v| a + v);
        let parallel =
            par_reduce_threads(workers, &[x], || 1u64, |a, _, &v| a + v, |a, b| a + b);
        prop_assert_eq!(parallel, serial);
    }

    #[test]
    fn par_max_by_on_empty_input_is_none(workers in 1usize..16) {
        set_threads(workers);
        let result = par_max_by::<f64, _>(&[], |_, &x| x);
        set_threads(0);
        prop_assert!(result.is_none());
    }

    #[test]
    fn par_max_by_on_single_element_returns_it(
        workers in 1usize..16,
        x in -1e9..1e9f64,
    ) {
        set_threads(workers);
        let result = par_max_by(&[x], |_, &v| v);
        set_threads(0);
        prop_assert_eq!(result, Some((0usize, x)));
    }

    #[test]
    fn small_inputs_match_serial_at_every_worker_count(
        workers in 1usize..16,
        values in proptest::collection::vec(-1e6..1e6f64, 0..3),
    ) {
        // The general small-slice property: map preserves order, reduce
        // matches a left fold, max matches the first-maximum scan.
        let mapped = par_map_threads(workers, &values, |_, &v| v.abs());
        let serial_map: Vec<f64> = values.iter().map(|v| v.abs()).collect();
        prop_assert_eq!(mapped, serial_map);

        let folded = par_reduce_threads(workers, &values, || 0.0, |a, _, &v| a + v, |a, b| a + b);
        let serial_fold: f64 = values.iter().sum();
        prop_assert!((folded - serial_fold).abs() < 1e-9);

        set_threads(workers);
        let max = par_max_by(&values, |_, &v| v);
        set_threads(0);
        let serial_max = values
            .iter()
            .enumerate()
            .fold(None::<(usize, f64)>, |best, (i, &v)| match best {
                Some((_, b)) if v > b => Some((i, v)),
                None if !v.is_nan() => Some((i, v)),
                _ => best,
            });
        prop_assert_eq!(max, serial_max);
    }
}
