//! Dependency-free parallel-sweep substrate for the `space-udc` workspace.
//!
//! Every headline result of the paper is produced by an embarrassingly
//! parallel sweep — the 7 168-point accelerator design-space exploration
//! (Fig. 17), the Monte-Carlo availability cross-validation (Figs. 24–25),
//! and the lifetime/power/tradespace TCO sweeps (Figs. 4–6). This crate
//! provides the shared executor those sweeps run on, built entirely on
//! [`std::thread::scope`] so the workspace keeps building offline with no
//! crates.io dependencies.
//!
//! Three things live here:
//!
//! - [`par_map`], [`par_reduce`], and [`par_max_by`]: chunked data-parallel
//!   primitives over slices whose merge order is *deterministic* (chunks
//!   merge left-to-right in index order), so parallel output is
//!   bit-identical to serial regardless of thread count;
//! - [`rng`]: a small, seedable, splittable pseudo-random generator
//!   (SplitMix64 seeding a xoshiro256**-class core) used by the Monte-Carlo
//!   models so trials can be partitioned across threads reproducibly;
//! - [`json`]: a minimal JSON value builder used to emit machine-readable
//!   benchmark and report artifacts (`BENCH_sweeps.json`).
//!
//! # Thread-count resolution
//!
//! The worker count is resolved, in priority order, from:
//!
//! 1. an explicit process-wide override ([`set_threads`], set by the
//!    `figures --jobs N` flag),
//! 2. the `SUDC_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! ```
//! let doubled = sudc_par::par_map(&[1, 2, 3], |_, &x| x * 2);
//! assert_eq!(doubled, vec![2, 4, 6]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod rng;

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide thread-count override; 0 means "auto".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker-thread count for every subsequent parallel call in
/// this process (the `figures --jobs N` flag lands here). Passing 0
/// restores automatic resolution.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// An invalid thread-count configuration (e.g. `SUDC_THREADS=0`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadConfigError(String);

impl std::fmt::Display for ThreadConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ThreadConfigError {}

impl From<ThreadConfigError> for sudc_errors::SudcError {
    /// Lifts a thread-configuration mistake into the workspace error
    /// taxonomy, preserving the original message as the allowed-range text.
    fn from(e: ThreadConfigError) -> Self {
        Self::single("thread configuration", "SUDC_THREADS", &e.0, e.0.clone())
    }
}

/// Pure thread-count resolution: explicit override, then the value of the
/// `SUDC_THREADS` environment variable (if set), then `fallback` (the
/// machine's available parallelism). Always at least 1 on success.
///
/// # Errors
///
/// A set-but-invalid `SUDC_THREADS` (zero, negative, or non-numeric) is a
/// configuration mistake, not a request for "auto": silently falling back
/// would run a reproducibility experiment at the wrong thread count, so it
/// is reported as an error instead.
pub fn resolve_threads(
    forced: usize,
    env: Option<&str>,
    fallback: usize,
) -> Result<usize, ThreadConfigError> {
    if forced > 0 {
        return Ok(forced);
    }
    if let Some(v) = env {
        return match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(ThreadConfigError(format!(
                "SUDC_THREADS must be a positive integer (got {v:?}); \
                 unset it for automatic thread-count resolution"
            ))),
        };
    }
    Ok(fallback.max(1))
}

/// Fallible form of [`threads`]: resolves the worker-thread count from the
/// override, the `SUDC_THREADS` environment variable, and available
/// parallelism.
///
/// # Errors
///
/// Returns [`ThreadConfigError`] if `SUDC_THREADS` is set to anything other
/// than a positive integer.
pub fn try_threads() -> Result<usize, ThreadConfigError> {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    let env = std::env::var("SUDC_THREADS").ok();
    let fallback = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    resolve_threads(forced, env.as_deref(), fallback)
}

/// Resolves the worker-thread count: explicit override, then the
/// `SUDC_THREADS` environment variable, then available parallelism.
/// Always at least 1.
///
/// # Panics
///
/// Panics with a clear message if `SUDC_THREADS` is set but not a positive
/// integer — use [`try_threads`] to validate configuration up front.
#[must_use]
pub fn threads() -> usize {
    match try_threads() {
        Ok(n) => n,
        Err(e) => panic!("{e}"),
    }
}

/// Splits `len` items into at most `workers` contiguous chunks of
/// near-equal size, returning `(start, end)` index pairs in order.
#[must_use]
pub fn chunk_bounds(len: usize, workers: usize) -> Vec<(usize, usize)> {
    let workers = workers.max(1).min(len.max(1));
    let base = len / workers;
    let extra = len % workers;
    let mut bounds = Vec::with_capacity(workers);
    let mut start = 0;
    for i in 0..workers {
        let size = base + usize::from(i < extra);
        if size == 0 {
            break;
        }
        bounds.push((start, start + size));
        start += size;
    }
    bounds
}

/// Maps `f` over `items` on `workers` threads, preserving input order.
///
/// `f` receives the *global* index of each item alongside the item, so
/// deterministic per-item work (e.g. index-derived RNG streams) does not
/// depend on the thread count. With `workers <= 1` (or one item) the map
/// runs inline on the caller's thread.
pub fn par_map_threads<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let bounds = chunk_bounds(items.len(), workers);
    if bounds.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .iter()
            .map(|&(start, end)| {
                let f = &f;
                scope.spawn(move || {
                    items[start..end]
                        .iter()
                        .enumerate()
                        .map(|(i, t)| f(start + i, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("sudc-par worker panicked"));
        }
    });
    out
}

/// [`par_map_threads`] with the ambient thread count ([`threads`]).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_threads(threads(), items, f)
}

/// Caps `workers` so no chunk holds fewer than `min_chunk` items: spawning
/// a thread for a handful of cheap items costs more than the items
/// themselves. With fewer than `2 * min_chunk` items everything runs on
/// the caller's thread. A `min_chunk` of 0 or 1 changes nothing.
///
/// The cap only changes *where* work runs, never its order: chunked
/// primitives merge left-to-right in index order, so results stay
/// bit-identical to the uncapped (and the serial) form.
#[must_use]
pub fn workers_for_min_chunk(len: usize, workers: usize, min_chunk: usize) -> usize {
    if min_chunk <= 1 {
        return workers;
    }
    workers.min((len / min_chunk).max(1))
}

/// [`par_map`] with a serial-fallback threshold: the ambient thread count
/// is capped so every chunk gets at least `min_chunk` items, and batches
/// smaller than `2 * min_chunk` skip thread spawning entirely. Output is
/// bit-identical to [`par_map`] (and to a serial map) — the threshold is
/// purely a performance knob for small batches of cheap items.
pub fn par_map_min_chunk<T, R, F>(items: &[T], min_chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers_for_min_chunk(items.len(), threads(), min_chunk);
    par_map_threads(workers, items, f)
}

/// [`par_reduce`] with a serial-fallback threshold, mirroring
/// [`par_map_min_chunk`]: chunks never shrink below `min_chunk` items and
/// small batches fold inline on the caller's thread. The merge stays
/// left-to-right in chunk order, so any reduction that is thread-count
/// invariant under [`par_reduce`] remains bit-identical here.
pub fn par_reduce_min_chunk<T, A, I, F, M>(
    items: &[T],
    min_chunk: usize,
    init: I,
    fold: F,
    merge: M,
) -> A
where
    T: Sync,
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(A, usize, &T) -> A + Sync,
    M: Fn(A, A) -> A,
{
    let workers = workers_for_min_chunk(items.len(), threads(), min_chunk);
    par_reduce_threads(workers, items, init, fold, merge)
}

/// Maps a fallible `f` over `items` in parallel, returning the first error
/// (in input order) or every result in input order.
///
/// # Errors
///
/// Returns the error produced for the lowest-indexed failing item.
pub fn par_try_map<T, R, E, F>(items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    par_map(items, f).into_iter().collect()
}

/// Folds each chunk serially (in index order) with `fold`, then merges the
/// per-chunk accumulators **left-to-right in chunk order** with `merge`.
///
/// Because chunks cover the input in contiguous index order and the merge
/// is sequential, any reduction whose serial form is a left fold with an
/// associative merge (sums, counts, first-wins argmax) produces output
/// bit-identical to its serial equivalent at every thread count.
pub fn par_reduce_threads<T, A, I, F, M>(
    workers: usize,
    items: &[T],
    init: I,
    fold: F,
    merge: M,
) -> A
where
    T: Sync,
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(A, usize, &T) -> A + Sync,
    M: Fn(A, A) -> A,
{
    let bounds = chunk_bounds(items.len(), workers);
    if bounds.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .fold(init(), |acc, (i, t)| fold(acc, i, t));
    }
    let mut accs = Vec::with_capacity(bounds.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .iter()
            .map(|&(start, end)| {
                let (init, fold) = (&init, &fold);
                scope.spawn(move || {
                    items[start..end]
                        .iter()
                        .enumerate()
                        .fold(init(), |acc, (i, t)| fold(acc, start + i, t))
                })
            })
            .collect();
        for handle in handles {
            accs.push(handle.join().expect("sudc-par worker panicked"));
        }
    });
    accs.into_iter().reduce(merge).unwrap_or_else(init)
}

/// [`par_reduce_threads`] with the ambient thread count ([`threads`]).
pub fn par_reduce<T, A, I, F, M>(items: &[T], init: I, fold: F, merge: M) -> A
where
    T: Sync,
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(A, usize, &T) -> A + Sync,
    M: Fn(A, A) -> A,
{
    par_reduce_threads(threads(), items, init, fold, merge)
}

/// Finds the item maximizing `score`, returning `(index, score)`.
///
/// Ties break toward the **lowest index** (the first maximum encountered in
/// input order), exactly like a serial `>` scan, at every thread count.
/// Returns `None` for an empty slice or if every score is NaN.
pub fn par_max_by<T, F>(items: &[T], score: F) -> Option<(usize, f64)>
where
    T: Sync,
    F: Fn(usize, &T) -> f64 + Sync,
{
    par_reduce(
        items,
        || None::<(usize, f64)>,
        |best, i, t| {
            let s = score(i, t);
            match best {
                Some((_, b)) if s > b => Some((i, s)),
                None if !s.is_nan() => Some((i, s)),
                _ => best,
            }
        },
        |a, b| match (a, b) {
            // Left (lower-index) accumulator wins ties, like a serial scan.
            (Some((_, av)), Some((_, bv))) => {
                if bv > av {
                    b
                } else {
                    a
                }
            }
            (x, None) | (None, x) => x,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_bounds_cover_input_exactly_once() {
        for len in [0usize, 1, 2, 7, 64, 7168] {
            for workers in [1usize, 2, 3, 5, 8, 100] {
                let bounds = chunk_bounds(len, workers);
                let mut expected = 0;
                for &(start, end) in &bounds {
                    assert_eq!(start, expected, "len={len} workers={workers}");
                    assert!(end > start);
                    expected = end;
                }
                assert_eq!(expected, len, "len={len} workers={workers}");
                assert!(bounds.len() <= workers.max(1));
            }
        }
    }

    #[test]
    fn par_map_preserves_order_at_every_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 7, 16] {
            let got = par_map_threads(workers, &items, |_, &x| x * x);
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn par_map_passes_global_indices() {
        let items = vec![(); 257];
        for workers in [1, 4, 13] {
            let got = par_map_threads(workers, &items, |i, ()| i);
            assert_eq!(got, (0..257).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_reduce_sum_matches_serial() {
        let items: Vec<f64> = (0..501).map(|i| f64::from(i) * 0.25).collect();
        let serial: f64 = items.iter().sum();
        for workers in [1, 2, 5, 11] {
            // Chunked left-to-right float summation is NOT bit-identical to a
            // flat left fold in general, but integer-valued quarters are exact.
            let parallel =
                par_reduce_threads(workers, &items, || 0.0, |acc, _, &x| acc + x, |a, b| a + b);
            assert!((parallel - serial).abs() < 1e-9, "workers={workers}");
        }
    }

    #[test]
    fn par_max_by_breaks_ties_toward_lowest_index() {
        // Two global maxima; the first must win at every thread count.
        let items = [1.0, 5.0, 3.0, 5.0, 2.0];
        for workers in [1, 2, 3, 5, 8] {
            set_threads(workers);
            let (idx, val) = par_max_by(&items, |_, &x| x).unwrap();
            assert_eq!((idx, val), (1, 5.0), "workers={workers}");
        }
        set_threads(0);
    }

    #[test]
    fn par_max_by_ignores_nan_and_empty() {
        set_threads(2);
        assert_eq!(par_max_by::<f64, _>(&[], |_, &x| x), None);
        let items = [f64::NAN, 2.0, f64::NAN];
        assert_eq!(par_max_by(&items, |_, &x| x), Some((1, 2.0)));
        set_threads(0);
    }

    #[test]
    fn min_chunk_caps_workers_without_changing_results() {
        // Boundary behavior of the cap itself.
        assert_eq!(workers_for_min_chunk(100, 8, 0), 8);
        assert_eq!(workers_for_min_chunk(100, 8, 1), 8);
        assert_eq!(workers_for_min_chunk(63, 8, 32), 1, "below 2*min_chunk");
        assert_eq!(workers_for_min_chunk(64, 8, 32), 2, "exactly 2*min_chunk");
        assert_eq!(workers_for_min_chunk(65, 8, 32), 2);
        assert_eq!(workers_for_min_chunk(256, 8, 32), 8, "cap saturates");
        assert_eq!(workers_for_min_chunk(0, 8, 32), 1);

        // Serial/parallel equivalence AT the threshold boundary: one item
        // below it (inline path), exactly at it (2 workers), and far above
        // it (uncapped) must all match the serial map bit for bit.
        for len in [63usize, 64, 65, 512] {
            let items: Vec<u64> = (0..len as u64).collect();
            let serial: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
            for workers in [1, 2, 8] {
                set_threads(workers);
                assert_eq!(
                    par_map_min_chunk(&items, 32, |_, &x| x * 3 + 1),
                    serial,
                    "len={len} workers={workers}"
                );
                let sum = par_reduce_min_chunk(
                    &items,
                    32,
                    || 0u64,
                    |acc, _, &x| acc + x * 3 + 1,
                    |a, b| a + b,
                );
                assert_eq!(
                    sum,
                    serial.iter().sum::<u64>(),
                    "len={len} workers={workers}"
                );
            }
            set_threads(0);
        }
    }

    #[test]
    fn par_try_map_returns_lowest_index_error() {
        let items: Vec<i32> = (0..100).collect();
        let r = par_try_map(&items, |_, &x| if x >= 40 { Err(x) } else { Ok(x) });
        assert_eq!(r, Err(40));
        let ok = par_try_map(&items, |_, &x| Ok::<_, ()>(x * 2));
        assert_eq!(ok.unwrap()[99], 198);
    }

    #[test]
    fn threads_is_at_least_one() {
        assert!(threads() >= 1);
    }

    #[test]
    fn resolve_threads_prefers_the_explicit_override() {
        assert_eq!(resolve_threads(4, Some("2"), 8), Ok(4));
        assert_eq!(resolve_threads(4, None, 8), Ok(4));
    }

    #[test]
    fn resolve_threads_reads_the_environment_value() {
        assert_eq!(resolve_threads(0, Some("3"), 8), Ok(3));
        assert_eq!(resolve_threads(0, Some(" 5 "), 8), Ok(5));
    }

    #[test]
    fn resolve_threads_falls_back_only_when_env_is_unset() {
        assert_eq!(resolve_threads(0, None, 6), Ok(6));
        assert_eq!(resolve_threads(0, None, 0), Ok(1));
    }

    #[test]
    fn resolve_threads_rejects_invalid_env_instead_of_falling_back() {
        for bad in ["0", "-1", "abc", "", "1.5"] {
            let err = resolve_threads(0, Some(bad), 8).unwrap_err();
            assert!(
                err.to_string()
                    .contains("SUDC_THREADS must be a positive integer"),
                "env {bad:?}: {err}"
            );
        }
    }
}
