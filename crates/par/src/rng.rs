//! Small, seedable, splittable pseudo-random generator for Monte-Carlo
//! models.
//!
//! The workspace's Monte-Carlo sweeps must be (a) reproducible from a
//! single documented seed and (b) partitionable across threads without the
//! result depending on the thread count. Both needs are met by deriving an
//! independent stream per fixed-size *trial block* with [`Rng64::stream`]:
//! block `b` of a simulation seeded with `s` always sees the same draws, no
//! matter which thread runs it.
//!
//! The generator is `xoshiro256**` (Blackman & Vigna) seeded through
//! SplitMix64 — the standard construction, dependency-free, passes BigCrush,
//! and is far better distributed than a bare LCG.

/// SplitMix64 step: the recommended seeder for xoshiro state.
#[must_use]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives the generator for an independent stream (e.g. one
    /// Monte-Carlo trial block). `Rng64::new(seed).stream(b)` is a pure
    /// function of `(seed, b)`, so work partitioned by block index is
    /// reproducible at any thread count.
    #[must_use]
    pub fn stream(seed: u64, index: u64) -> Self {
        // Mix the stream index through SplitMix64 so adjacent indices land
        // far apart in state space.
        let mut sm = seed ^ index.wrapping_mul(0xa076_1d64_78bd_642f);
        let mixed = splitmix64(&mut sm);
        Self::new(mixed ^ seed.rotate_left(17))
    }

    /// Touches the generator state so an upcoming draw from this
    /// generator finds it in cache: a safe prefetch for hot loops that
    /// already know which stream they will draw from next. The dead load
    /// retires out of order, so the miss overlaps useful work instead of
    /// stalling the draw.
    #[inline]
    pub fn warm(&self) {
        std::hint::black_box(self.s[0]);
    }

    /// Next raw 64-bit output.
    #[must_use]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[must_use]
    pub fn next_f64(&mut self) -> f64 {
        // Top 53 bits scaled by 2^-53: the canonical double construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not finite or `lo >= hi` (see
    /// [`Rng64::try_range`]).
    #[must_use]
    pub fn next_range(&mut self, lo: f64, hi: f64) -> f64 {
        match self.try_range(lo, hi) {
            Ok(x) => x,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`Rng64::next_range`]: validates the bounds before
    /// drawing (an invalid range draws nothing, keeping the stream intact).
    ///
    /// # Errors
    ///
    /// Returns a structured error if a bound is NaN/±∞ or `lo >= hi`.
    pub fn try_range(&mut self, lo: f64, hi: f64) -> Result<f64, sudc_errors::SudcError> {
        // Hot path first: building Diagnostics allocates, and this sits
        // inside every Monte-Carlo draw loop in the workspace.
        if lo.is_finite() && hi.is_finite() && lo < hi {
            return Ok(lo + self.next_f64() * (hi - lo));
        }
        let mut d = sudc_errors::Diagnostics::new("Rng64::next_range");
        let lo_ok = d.finite("lo", lo);
        let hi_ok = d.finite("hi", hi);
        if lo_ok && hi_ok {
            d.ensure(
                lo < hi,
                "lo..hi",
                format!("[{lo}, {hi})"),
                "a non-empty range (lo < hi)",
            );
        }
        d.finish()?;
        unreachable!("invalid range must produce a violation")
    }

    /// Uniform integer draw in `[0, bound)` via Lemire's multiply-shift
    /// (bias negligible for the bounds used here).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0 (see [`Rng64::try_below`]).
    #[must_use]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        match self.try_below(bound) {
            Ok(x) => x,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`Rng64::next_below`].
    ///
    /// # Errors
    ///
    /// Returns a structured error if `bound` is 0.
    pub fn try_below(&mut self, bound: u64) -> Result<u64, sudc_errors::SudcError> {
        if bound == 0 {
            return Err(sudc_errors::SudcError::single(
                "Rng64::next_below",
                "bound",
                bound,
                "a positive bound",
            ));
        }
        Ok(((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64)
    }

    /// Standard-exponential draw (mean 1) by inversion, clamped away from
    /// `ln(0)`.
    #[must_use]
    pub fn next_exp(&mut self) -> f64 {
        -(1.0 - self.next_f64()).max(f64::MIN_POSITIVE).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_are_independent_and_reproducible() {
        let mut s0 = Rng64::stream(7, 0);
        let mut s1 = Rng64::stream(7, 1);
        assert_ne!(s0.next_u64(), s1.next_u64());
        let mut again = Rng64::stream(7, 0);
        let mut reference = Rng64::stream(7, 0);
        for _ in 0..50 {
            assert_eq!(again.next_u64(), reference.next_u64());
        }
    }

    #[test]
    fn f64_draws_are_in_unit_interval_and_roughly_uniform() {
        let mut rng = Rng64::new(2024);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn exponential_draws_have_unit_mean() {
        let mut rng = Rng64::new(9);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.next_exp()).sum::<f64>() / f64::from(n);
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bounded_draws_stay_in_bounds() {
        let mut rng = Rng64::new(5);
        for _ in 0..1000 {
            assert!(rng.next_below(7) < 7);
            let x = rng.next_range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn invalid_draw_parameters_error_without_touching_the_stream() {
        let mut rng = Rng64::new(11);
        let mut twin = rng.clone();
        assert!(rng.try_range(f64::NAN, 1.0).is_err());
        assert!(rng.try_range(0.0, f64::INFINITY).is_err());
        assert!(rng.try_range(3.0, 3.0).is_err());
        assert!(rng.try_below(0).is_err());
        // Rejected draws consumed no randomness.
        assert_eq!(rng.next_u64(), twin.next_u64());
        let err = rng.try_range(2.0, -2.0).unwrap_err();
        assert!(err.to_string().contains("lo < hi"), "{err}");
    }
}
