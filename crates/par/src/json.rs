//! Minimal JSON value builder and emitter.
//!
//! The workspace emits machine-readable artifacts (`BENCH_sweeps.json`,
//! report exports) but must build offline without `serde`. This module is
//! the small honest subset we actually need: building a [`Json`] tree and
//! rendering it; numbers render with enough precision to round-trip `f64`.

use std::fmt::Write as _;

use sudc_errors::SudcError;

/// Largest integer (2^53) that `f64` represents exactly; counters above
/// this cannot round-trip through a JSON number without losing precision.
pub const MAX_EXACT_JSON_INT: u64 = 1 << 53;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Creates an empty object.
    #[must_use]
    pub fn object() -> Self {
        Self::Obj(Vec::new())
    }

    /// Adds or replaces a key on an object, builder-style.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object (see [`Json::try_with`]).
    #[must_use]
    pub fn with(self, key: &str, value: impl Into<Json>) -> Self {
        match self.try_with(key, value) {
            Ok(obj) => obj,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`Json::with`].
    ///
    /// # Errors
    ///
    /// Returns a structured error if `self` is not an object.
    pub fn try_with(mut self, key: &str, value: impl Into<Json>) -> Result<Self, SudcError> {
        let Self::Obj(entries) = &mut self else {
            return Err(SudcError::single(
                "Json::with",
                "self",
                format!("{self:?}"),
                "an object receiver (non-object values cannot take keys)",
            ));
        };
        let value = value.into();
        if let Some(slot) = entries.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            entries.push((key.to_string(), value));
        }
        Ok(self)
    }

    /// Renders compact JSON.
    #[must_use]
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None, 0);
        out
    }

    /// Renders pretty-printed JSON with two-space indentation.
    #[must_use]
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(2), 0);
        out
    }

    fn render(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Self::Num(n) => {
                if n.is_finite() {
                    // Shortest representation that round-trips an f64.
                    let _ = write!(out, "{n}");
                    // `{}` on a whole f64 prints no decimal point; that is
                    // still valid JSON, so leave it.
                } else {
                    out.push_str("null");
                }
            }
            Self::Str(s) => escape_into(out, s),
            Self::Arr(items) => {
                render_seq(out, indent, depth, items.len(), '[', ']', |out, i| {
                    items[i].render(out, indent, depth + 1);
                });
            }
            Self::Obj(entries) => {
                render_seq(out, indent, depth, entries.len(), '{', '}', |out, i| {
                    let (k, v) = &entries[i];
                    escape_into(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.render(out, indent, depth + 1);
                });
            }
        }
    }
}

fn render_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Self::Num(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Self::Num(f64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        // f64 represents integers exactly up to 2^53 — far beyond any
        // count this workspace produces.
        Self::Num(v as f64)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Self::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Self::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl TryFrom<u64> for Json {
    type Error = SudcError;

    /// Checked integer conversion: counters above 2^53
    /// ([`MAX_EXACT_JSON_INT`]) would silently lose precision through the
    /// `f64` JSON number representation, so they error instead.
    fn try_from(v: u64) -> Result<Self, SudcError> {
        if v <= MAX_EXACT_JSON_INT {
            #[allow(clippy::cast_precision_loss)] // exact below 2^53, checked above
            Ok(Self::Num(v as f64))
        } else {
            Err(SudcError::single(
                "Json counter",
                "u64",
                v,
                format!("at most 2^53 = {MAX_EXACT_JSON_INT} (exactly representable as f64)"),
            ))
        }
    }
}

/// Types that can render themselves as a [`Json`] value (the workspace's
/// offline stand-in for `serde::Serialize`).
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object_renders_in_insertion_order() {
        let j = Json::object()
            .with("b", 2.0)
            .with("a", Json::Arr(vec![Json::Num(1.0), Json::Null]));
        assert_eq!(j.to_string_compact(), r#"{"b":2,"a":[1,null]}"#);
    }

    #[test]
    fn with_replaces_existing_keys() {
        let j = Json::object().with("x", 1.0).with("x", 2.0);
        assert_eq!(j.to_string_compact(), r#"{"x":2}"#);
    }

    #[test]
    fn strings_are_escaped() {
        let j = Json::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(j.to_string_compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn floats_round_trip_their_value() {
        let j = Json::Num(123.5);
        assert_eq!(j.to_string_compact(), "123.5");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
    }

    #[test]
    fn pretty_print_is_indented_and_parsable_shape() {
        let j = Json::object().with("k", Json::from(vec![1.0, 2.0]));
        let s = j.to_string_pretty();
        assert!(s.contains("\n  \"k\": [\n"));
        assert!(s.ends_with('}'));
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn with_on_array_panics() {
        let _ = Json::Arr(vec![]).with("k", 1.0);
    }

    #[test]
    fn try_with_matches_with_on_objects_and_errors_elsewhere() {
        let ok = Json::object().try_with("x", 1.0).unwrap();
        assert_eq!(ok, Json::object().with("x", 1.0));
        let err = Json::Num(1.0).try_with("k", 2.0).unwrap_err();
        assert!(err.to_string().contains("non-object"));
    }

    #[test]
    fn u64_conversion_is_exact_up_to_2_pow_53() {
        assert_eq!(Json::try_from(0u64).unwrap(), Json::Num(0.0));
        let max = Json::try_from(MAX_EXACT_JSON_INT).unwrap();
        assert_eq!(max.to_string_compact(), "9007199254740992");
        let err = Json::try_from(MAX_EXACT_JSON_INT + 1).unwrap_err();
        assert!(err.to_string().contains("9007199254740993"), "{err}");
        assert!(Json::try_from(u64::MAX).is_err());
    }
}
