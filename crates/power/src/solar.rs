//! Solar-array sizing with BOL/EOL degradation and eclipse oversizing.

use sudc_orbital::constants::SOLAR_FLUX;
use sudc_orbital::CircularOrbit;
use sudc_units::{Kilograms, SquareMeters, Watts, Years};

/// Photovoltaic cell technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolarCellTech {
    /// Triple-junction GaAs (the modern spacecraft default).
    TripleJunctionGaAs,
    /// Crystalline silicon (cheaper, heavier, degrades faster).
    Silicon,
}

impl SolarCellTech {
    /// Cell conversion efficiency at BOL.
    #[must_use]
    pub fn efficiency(self) -> f64 {
        match self {
            Self::TripleJunctionGaAs => 0.30,
            Self::Silicon => 0.20,
        }
    }

    /// Annual efficiency decay in LEO (paper: "generally <= 3% annual loss").
    #[must_use]
    pub fn annual_degradation(self) -> f64 {
        match self {
            Self::TripleJunctionGaAs => 0.025,
            Self::Silicon => 0.03,
        }
    }

    /// Array-level specific power at BOL, W/kg (panel + substrate + yoke).
    #[must_use]
    pub fn specific_power(self) -> f64 {
        match self {
            Self::TripleJunctionGaAs => 100.0,
            Self::Silicon => 60.0,
        }
    }
}

/// Battery round-trip efficiency used when oversizing the array to recharge
/// through eclipse.
pub const BATTERY_ROUND_TRIP_EFFICIENCY: f64 = 0.90;

/// Array packing / pointing / harness derate.
pub const ARRAY_DERATE: f64 = 0.90;

/// A sized solar array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolarArray {
    /// Cell technology.
    pub tech: SolarCellTech,
    /// Power the array must produce in sunlight at BOL.
    pub bol_power: Watts,
    /// Panel area.
    pub area: SquareMeters,
    /// Array mass.
    pub mass: Kilograms,
}

impl SolarArray {
    /// Sizes an array that continuously delivers `eol_load` (the end-of-life
    /// system power) for `lifetime` on `orbit`.
    ///
    /// Three oversizing effects stack, exactly as the paper's Table I
    /// derivations describe:
    ///
    /// 1. **Eclipse**: the array only generates for the sunlit fraction and
    ///    must additionally recharge the battery at round-trip efficiency η:
    ///    `sun_factor = ((1-f) + f/η) / (1-f)`.
    /// 2. **Degradation**: BOL capability must exceed EOL requirement:
    ///    `bol = eol / (1-d)^L` — exponential in lifetime.
    /// 3. **Derates**: packing and pointing losses.
    ///
    /// # Panics
    ///
    /// Panics if `eol_load` is negative/non-finite or `lifetime` negative.
    ///
    /// ```
    /// use sudc_power::solar::{SolarArray, SolarCellTech};
    /// use sudc_orbital::CircularOrbit;
    /// use sudc_units::{Watts, Years};
    ///
    /// let array = SolarArray::size(
    ///     Watts::from_kilowatts(4.0),
    ///     CircularOrbit::reference_leo(),
    ///     Years::new(5.0),
    ///     SolarCellTech::TripleJunctionGaAs,
    /// );
    /// assert!(array.bol_power.as_kilowatts() > 6.0);
    /// ```
    #[must_use]
    pub fn size(
        eol_load: Watts,
        orbit: CircularOrbit,
        lifetime: Years,
        tech: SolarCellTech,
    ) -> Self {
        assert!(
            eol_load.is_finite() && eol_load.value() >= 0.0,
            "EOL load must be finite and non-negative, got {eol_load}"
        );
        assert!(
            lifetime.value() >= 0.0,
            "lifetime must be non-negative, got {lifetime}"
        );
        let f = orbit.eclipse_fraction();
        let sun_factor = ((1.0 - f) + f / BATTERY_ROUND_TRIP_EFFICIENCY) / (1.0 - f);
        let degradation = (1.0 - tech.annual_degradation()).powf(lifetime.value());
        let bol_power = eol_load * (sun_factor / degradation);
        let area =
            SquareMeters::new(bol_power.value() / (SOLAR_FLUX * tech.efficiency() * ARRAY_DERATE));
        let mass = Kilograms::new(bol_power.value() / tech.specific_power());
        Self {
            tech,
            bol_power,
            area,
            mass,
        }
    }

    /// Power the array can deliver in sunlight after `elapsed` years.
    #[must_use]
    pub fn power_after(&self, elapsed: Years) -> Watts {
        self.bol_power * (1.0 - self.tech.annual_degradation()).powf(elapsed.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn leo() -> CircularOrbit {
        CircularOrbit::reference_leo()
    }

    #[test]
    fn bol_exceeds_eol_requirement() {
        let a = SolarArray::size(
            Watts::from_kilowatts(4.0),
            leo(),
            Years::new(5.0),
            SolarCellTech::TripleJunctionGaAs,
        );
        // Eclipse oversizing (~1.65x) times degradation recovery (~1.13x).
        let ratio = a.bol_power.value() / 4000.0;
        assert!(ratio > 1.5 && ratio < 2.2, "BOL/EOL ratio {ratio}");
    }

    #[test]
    fn bol_requirement_grows_exponentially_with_lifetime() {
        // Paper Fig. 4 driver: "BOL power generation requirements increase
        // exponentially" with lifetime.
        let p = |yrs: f64| {
            SolarArray::size(
                Watts::from_kilowatts(1.0),
                leo(),
                Years::new(yrs),
                SolarCellTech::TripleJunctionGaAs,
            )
            .bol_power
            .value()
        };
        let r5 = p(5.0) / p(0.0);
        let r10 = p(10.0) / p(0.0);
        assert!((r5 - 1.0 / 0.975f64.powi(5)).abs() < 1e-9);
        assert!((r10 - r5 * r5).abs() < 1e-9, "exponential growth");
    }

    #[test]
    fn degraded_power_meets_load_at_eol() {
        let load = Watts::from_kilowatts(4.0);
        let a = SolarArray::size(
            load,
            leo(),
            Years::new(5.0),
            SolarCellTech::TripleJunctionGaAs,
        );
        let eol_sun_power = a.power_after(Years::new(5.0));
        let f = leo().eclipse_fraction();
        let needed = load * (((1.0 - f) + f / BATTERY_ROUND_TRIP_EFFICIENCY) / (1.0 - f));
        assert!((eol_sun_power - needed).abs() < Watts::new(1e-6));
    }

    #[test]
    fn silicon_arrays_are_heavier_and_bigger() {
        let load = Watts::from_kilowatts(2.0);
        let gaas = SolarArray::size(
            load,
            leo(),
            Years::new(5.0),
            SolarCellTech::TripleJunctionGaAs,
        );
        let si = SolarArray::size(load, leo(), Years::new(5.0), SolarCellTech::Silicon);
        assert!(si.mass > gaas.mass);
        assert!(si.area > gaas.area);
    }

    #[test]
    fn four_kw_array_dimensions_are_plausible() {
        let a = SolarArray::size(
            Watts::from_kilowatts(4.0),
            leo(),
            Years::new(5.0),
            SolarCellTech::TripleJunctionGaAs,
        );
        assert!(
            a.area.value() > 15.0 && a.area.value() < 30.0,
            "area {}",
            a.area
        );
        assert!(
            a.mass.value() > 50.0 && a.mass.value() < 110.0,
            "mass {}",
            a.mass
        );
    }

    proptest! {
        #[test]
        fn sizing_is_linear_in_load(load in 10.0..20_000.0f64) {
            let a1 = SolarArray::size(
                Watts::new(load), leo(), Years::new(5.0), SolarCellTech::TripleJunctionGaAs);
            let a2 = SolarArray::size(
                Watts::new(2.0 * load), leo(), Years::new(5.0), SolarCellTech::TripleJunctionGaAs);
            prop_assert!((a2.mass.value() / a1.mass.value() - 2.0).abs() < 1e-9);
            prop_assert!((a2.area.value() / a1.area.value() - 2.0).abs() < 1e-9);
        }

        #[test]
        fn longer_missions_need_bigger_arrays(
            y1 in 0.0..15.0f64,
            y2 in 0.0..15.0f64,
        ) {
            let (lo, hi) = if y1 <= y2 { (y1, y2) } else { (y2, y1) };
            let a_lo = SolarArray::size(
                Watts::new(1000.0), leo(), Years::new(lo), SolarCellTech::TripleJunctionGaAs);
            let a_hi = SolarArray::size(
                Watts::new(1000.0), leo(), Years::new(hi), SolarCellTech::TripleJunctionGaAs);
            prop_assert!(a_lo.bol_power <= a_hi.bol_power);
        }
    }
}
