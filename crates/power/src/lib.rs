//! Electrical-power substrate for the `space-udc` toolkit.
//!
//! SµDCs are LEO-based and solar powered (paper §II). This crate sizes the
//! generation chain that the TCO model costs:
//!
//! - [`solar`] — solar arrays with beginning-of-life (BOL) vs end-of-life
//!   (EOL) degradation, eclipse oversizing, and specific power;
//! - [`battery`] — eclipse-ride-through batteries with depth-of-discharge
//!   limits;
//! - [`design`] — a complete power-subsystem design (array + battery + PDU);
//! - [`nuclear`] — the RTG alternative (and why LEO SµDCs do not use it).
//!
//! # Examples
//!
//! ```
//! use sudc_power::design::PowerDesign;
//! use sudc_orbital::CircularOrbit;
//! use sudc_units::{Watts, Years};
//!
//! let d = PowerDesign::size_default(
//!     Watts::from_kilowatts(4.0),
//!     CircularOrbit::reference_leo(),
//!     Years::new(5.0),
//! );
//! assert!(d.bol_array_power() > Watts::from_kilowatts(4.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod design;
pub mod nuclear;
pub mod solar;

pub use design::PowerDesign;
pub use solar::{SolarArray, SolarCellTech};
