//! Eclipse-ride-through battery sizing.

use sudc_orbital::CircularOrbit;
use sudc_units::{Joules, Kilograms, Watts};

/// Li-ion cell-pack specific energy, Wh/kg.
const SPECIFIC_ENERGY_WH_PER_KG: f64 = 150.0;

/// Maximum depth of discharge for LEO cycle life (tens of thousands of
/// eclipse cycles over five years force a shallow DoD).
pub const DEFAULT_DEPTH_OF_DISCHARGE: f64 = 0.30;

/// Discharge-path efficiency.
const DISCHARGE_EFFICIENCY: f64 = 0.95;

/// A sized battery pack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    /// Installed (nameplate) capacity.
    pub capacity: Joules,
    /// Energy drawn per eclipse.
    pub eclipse_energy: Joules,
    /// Pack mass.
    pub mass: Kilograms,
}

impl Battery {
    /// Sizes a pack that carries `load` through the longest eclipse of
    /// `orbit` at the default depth of discharge.
    ///
    /// # Panics
    ///
    /// Panics if `load` is negative or non-finite.
    ///
    /// ```
    /// use sudc_power::battery::Battery;
    /// use sudc_orbital::CircularOrbit;
    /// use sudc_units::Watts;
    ///
    /// let b = Battery::size(Watts::from_kilowatts(4.0), CircularOrbit::reference_leo());
    /// assert!(b.mass.value() > 30.0 && b.mass.value() < 120.0);
    /// ```
    #[must_use]
    pub fn size(load: Watts, orbit: CircularOrbit) -> Self {
        assert!(
            load.is_finite() && load.value() >= 0.0,
            "battery load must be finite and non-negative, got {load}"
        );
        let eclipse_seconds = orbit.period() * orbit.eclipse_fraction();
        let eclipse_energy = load * eclipse_seconds;
        let capacity = eclipse_energy / (DEFAULT_DEPTH_OF_DISCHARGE * DISCHARGE_EFFICIENCY);
        let mass = Kilograms::new(capacity.value() / (SPECIFIC_ENERGY_WH_PER_KG * 3600.0));
        Self {
            capacity,
            eclipse_energy,
            mass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn capacity_respects_depth_of_discharge() {
        let b = Battery::size(Watts::from_kilowatts(4.0), CircularOrbit::reference_leo());
        let dod_used = b.eclipse_energy / b.capacity;
        assert!(dod_used < DEFAULT_DEPTH_OF_DISCHARGE + 1e-9);
    }

    #[test]
    fn four_kw_pack_holds_kilowatt_hours() {
        let b = Battery::size(Watts::from_kilowatts(4.0), CircularOrbit::reference_leo());
        let kwh = b.capacity.value() / 3.6e6;
        // ~2.3 kWh eclipse draw at 30% DoD -> ~8 kWh nameplate.
        assert!(kwh > 5.0 && kwh < 12.0, "capacity {kwh} kWh");
    }

    #[test]
    fn zero_load_needs_no_battery() {
        let b = Battery::size(Watts::ZERO, CircularOrbit::reference_leo());
        assert_eq!(b.mass, Kilograms::ZERO);
    }

    proptest! {
        #[test]
        fn mass_linear_in_load(load in 1.0..20_000.0f64) {
            let orbit = CircularOrbit::reference_leo();
            let b1 = Battery::size(Watts::new(load), orbit);
            let b2 = Battery::size(Watts::new(2.0 * load), orbit);
            prop_assert!((b2.mass.value() / b1.mass.value() - 2.0).abs() < 1e-9);
        }
    }
}
