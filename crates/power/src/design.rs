//! Complete power-subsystem design: array + battery + distribution.

use sudc_orbital::CircularOrbit;
use sudc_units::{Kilograms, SquareMeters, Watts, Years};

use crate::battery::Battery;
use crate::solar::{SolarArray, SolarCellTech};

/// Power-distribution (PDU, harness, regulators) mass per watt of EOL load,
/// kg/W.
const DISTRIBUTION_SPECIFIC_MASS: f64 = 0.01;

/// A sized electrical power subsystem.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerDesign {
    /// End-of-life continuous load the subsystem delivers.
    pub eol_load: Watts,
    /// Solar array.
    pub array: SolarArray,
    /// Eclipse battery.
    pub battery: Battery,
    /// PDU / harness mass.
    pub distribution_mass: Kilograms,
}

impl PowerDesign {
    /// Sizes a power subsystem delivering `eol_load` continuously on `orbit`
    /// for `lifetime` with the given cell technology.
    #[must_use]
    pub fn size(
        eol_load: Watts,
        orbit: CircularOrbit,
        lifetime: Years,
        tech: SolarCellTech,
    ) -> Self {
        let array = SolarArray::size(eol_load, orbit, lifetime, tech);
        let battery = Battery::size(eol_load, orbit);
        let distribution_mass = Kilograms::new(DISTRIBUTION_SPECIFIC_MASS * eol_load.value());
        Self {
            eol_load,
            array,
            battery,
            distribution_mass,
        }
    }

    /// Sizes with triple-junction GaAs cells (the spacecraft default).
    #[must_use]
    pub fn size_default(eol_load: Watts, orbit: CircularOrbit, lifetime: Years) -> Self {
        Self::size(eol_load, orbit, lifetime, SolarCellTech::TripleJunctionGaAs)
    }

    /// Beginning-of-life array power (what generation capacity must be
    /// bought and launched).
    #[must_use]
    pub fn bol_array_power(&self) -> Watts {
        self.array.bol_power
    }

    /// Solar panel area (drives drag cross-section and structure).
    #[must_use]
    pub fn array_area(&self) -> SquareMeters {
        self.array.area
    }

    /// Total subsystem mass.
    #[must_use]
    pub fn mass(&self) -> Kilograms {
        self.array.mass + self.battery.mass + self.distribution_mass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn leo() -> CircularOrbit {
        CircularOrbit::reference_leo()
    }

    #[test]
    fn four_kw_subsystem_mass_is_plausible() {
        let d = PowerDesign::size_default(Watts::from_kilowatts(4.0), leo(), Years::new(5.0));
        let m = d.mass().value();
        // Array ~75 kg + battery ~60 kg + distribution ~40 kg.
        assert!(m > 120.0 && m < 260.0, "mass {m} kg");
    }

    #[test]
    fn mass_components_are_all_included() {
        let d = PowerDesign::size_default(Watts::from_kilowatts(1.0), leo(), Years::new(5.0));
        let sum = d.array.mass + d.battery.mass + d.distribution_mass;
        assert_eq!(d.mass(), sum);
    }

    #[test]
    fn bol_power_exceeds_load() {
        let d = PowerDesign::size_default(Watts::from_kilowatts(4.0), leo(), Years::new(5.0));
        assert!(d.bol_array_power() > d.eol_load);
    }

    proptest! {
        #[test]
        fn subsystem_monotone_in_load(
            l1 in 10.0..20_000.0f64,
            l2 in 10.0..20_000.0f64,
        ) {
            let (lo, hi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
            let d_lo = PowerDesign::size_default(Watts::new(lo), leo(), Years::new(5.0));
            let d_hi = PowerDesign::size_default(Watts::new(hi), leo(), Years::new(5.0));
            prop_assert!(d_lo.mass() <= d_hi.mass());
            prop_assert!(d_lo.bol_array_power() <= d_hi.bol_array_power());
            prop_assert!(d_lo.array_area() <= d_hi.array_area());
        }
    }
}
