//! Radioisotope power as an alternative to solar arrays.
//!
//! The paper notes that SµDCs, "being LEO-based, are solar powered; distant
//! missions may use nuclear batteries". This module models an RTG
//! (radioisotope thermoelectric generator) option so the trade is explicit:
//! RTGs are eclipse-free and degrade slowly, but their specific power and
//! cost are catastrophically worse at SµDC power levels — which is why the
//! toolkit defaults to solar.

use sudc_units::{Kilograms, Usd, Watts, Years};

/// An RTG generator family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rtg {
    /// Electrical specific power at BOL, W/kg (flight RTGs: ~2–5 W/kg).
    pub specific_power: f64,
    /// Cost per electrical watt at BOL (Pu-238 systems run ~$0.5–1M/W
    /// including fuel production; we use the optimistic end).
    pub usd_per_watt: Usd,
    /// Annual output decay (isotope half-life + thermocouple degradation).
    pub annual_decay: f64,
}

impl Rtg {
    /// A GPHS-RTG-class generator (Pu-238, SiGe thermocouples).
    #[must_use]
    pub fn gphs_class() -> Self {
        Self {
            specific_power: 5.0,
            usd_per_watt: Usd::new(500_000.0),
            annual_decay: 0.016,
        }
    }

    /// Generator mass to deliver `eol_load` at end of `lifetime`.
    ///
    /// # Panics
    ///
    /// Panics if the load is negative or lifetime negative.
    #[must_use]
    pub fn mass(&self, eol_load: Watts, lifetime: Years) -> Kilograms {
        let bol = self.bol_power(eol_load, lifetime);
        Kilograms::new(bol.value() / self.specific_power)
    }

    /// BOL electrical power that must be fueled for an EOL requirement.
    #[must_use]
    pub fn bol_power(&self, eol_load: Watts, lifetime: Years) -> Watts {
        assert!(
            eol_load.is_finite() && eol_load.value() >= 0.0,
            "load must be finite and non-negative, got {eol_load}"
        );
        assert!(lifetime.value() >= 0.0, "lifetime must be non-negative");
        eol_load / (1.0 - self.annual_decay).powf(lifetime.value())
    }

    /// Generator procurement cost.
    #[must_use]
    pub fn cost(&self, eol_load: Watts, lifetime: Years) -> Usd {
        self.usd_per_watt * self.bol_power(eol_load, lifetime).value()
    }
}

impl Default for Rtg {
    fn default() -> Self {
        Self::gphs_class()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::PowerDesign;
    use sudc_orbital::CircularOrbit;

    #[test]
    fn rtg_needs_no_eclipse_oversizing() {
        // An RTG's BOL only covers decay, not eclipse: the ratio is much
        // smaller than solar's (~1.9x at 5 years).
        let rtg = Rtg::gphs_class();
        let ratio = rtg.bol_power(Watts::new(1000.0), Years::new(5.0)).value() / 1000.0;
        assert!(ratio < 1.15, "RTG BOL/EOL ratio {ratio}");
    }

    #[test]
    fn rtg_mass_is_uncompetitive_at_sudc_scale() {
        // 4 kW-class EOL load: solar power subsystem ~200 kg vs RTG ~900 kg.
        let load = Watts::from_kilowatts(4.0);
        let rtg_mass = Rtg::gphs_class().mass(load, Years::new(5.0));
        let solar =
            PowerDesign::size_default(load, CircularOrbit::reference_leo(), Years::new(5.0));
        assert!(
            rtg_mass > solar.mass() * 3.0,
            "RTG {rtg_mass} vs solar {}",
            solar.mass()
        );
    }

    #[test]
    fn rtg_cost_is_prohibitive() {
        // ~$2B for 4 kW: three orders beyond the whole solar SµDC.
        let cost = Rtg::gphs_class().cost(Watts::from_kilowatts(4.0), Years::new(5.0));
        assert!(cost.as_millions() > 1000.0);
    }

    #[test]
    fn decay_is_mild_compared_to_solar() {
        let rtg = Rtg::gphs_class();
        assert!(rtg.annual_decay < 0.025);
    }
}
