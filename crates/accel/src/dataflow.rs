//! Row-stationary dataflow access counting — the Timeloop role.
//!
//! For each layer we count, analytically, the actions at every level of the
//! storage hierarchy under a row-stationary mapping (Eyeriss):
//!
//! - **RF**: every MAC reads two operands and updates a partial sum in the
//!   PE register file;
//! - **Global buffers**: ifmap reads are multicast across the filters
//!   mapped in the x-dimension and reused across `K` kernel rows inside the
//!   RF; weight reads are reused across the output rows mapped in the
//!   y-dimension and across an output row (`OW`) inside the RF; partial
//!   sums spill at kernel granularity, inflated when the accumulation
//!   buffer cannot hold a full output-row working set;
//! - **DRAM**: each tensor moves at least once; whichever of the
//!   ifmap/weight tensors does not fit its buffer forces re-fetching of the
//!   other, and the model picks the cheaper loop order;
//! - **Leakage**: PEs burn static energy every cycle, and under-utilized
//!   arrays (layer shape smaller than the grid) stretch cycle counts —
//!   this is what makes *per-layer* accelerators beat a single global
//!   design.

use sudc_compute::networks::{Layer, Network};
use sudc_units::Joules;

use crate::design::AcceleratorConfig;
use crate::energy::EnergyTable;
use crate::mapping::{Engine, LoopOrder, Mapping, Schedule};

/// The temporal reuse pattern wired into the PE control.
///
/// Together with a spatial projection this forms a hardwired
/// [`Engine`](crate::mapping::Engine); the full mapping space (engine ×
/// software [`Schedule`](crate::mapping::Schedule)) lives in
/// [`crate::mapping`]. [`count_accesses_with`] evaluates the canonical
/// engine of a dataflow — the two points the pre-search model hardwired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataflow {
    /// Eyeriss-style row stationary: kernel rows held in PE register files,
    /// weights reused across an output row, ifmaps multicast across the
    /// filters mapped on the array.
    RowStationary,
    /// Weight stationary: weights pinned in the PE array; ifmap activations
    /// stream past and are broadcast across mapped filters. Favors layers
    /// with little weight reuse (1x1 convolutions, dense layers).
    WeightStationary,
}

impl Dataflow {
    /// Both mapping families.
    #[must_use]
    pub fn all() -> [Self; 2] {
        [Self::RowStationary, Self::WeightStationary]
    }
}

/// Bytes per activation/weight word (16-bit).
const WORD_BYTES: f64 = 2.0;
/// Bytes per partial sum (32-bit accumulator).
const PSUM_BYTES: f64 = 4.0;

/// Detailed action counts for one layer on one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessCounts {
    /// Multiply-accumulates.
    pub macs: f64,
    /// PE register-file accesses.
    pub rf_accesses: f64,
    /// NoC word transfers.
    pub noc_transfers: f64,
    /// Global-buffer accesses (ifmap + weight + psum).
    pub glb_accesses: f64,
    /// DRAM word transfers.
    pub dram_words: f64,
    /// The portion of `dram_words` that is multi-pass re-fetch of a
    /// streaming tensor (as opposed to compulsory first-touch traffic).
    /// Re-fetch is strided re-streaming with poor row-buffer locality,
    /// so the energy table may charge it a premium per word.
    pub dram_refetch_words: f64,
    /// Execution cycles (one MAC per PE per cycle, utilization-limited).
    pub cycles: f64,
    /// Fraction of PEs doing useful work.
    pub utilization: f64,
}

/// Counts the storage-hierarchy actions for `layer` on `config` under the
/// cheaper of the two canonical dataflows (see [`count_accesses_with`]).
#[must_use]
pub fn count_accesses(config: AcceleratorConfig, layer: &Layer) -> AccessCounts {
    let rs = count_accesses_with(config, layer, Dataflow::RowStationary);
    let ws = count_accesses_with(config, layer, Dataflow::WeightStationary);
    if ws.glb_accesses + ws.dram_words < rs.glb_accesses + rs.dram_words {
        ws
    } else {
        rs
    }
}

/// Counts the storage-hierarchy actions for `layer` on `config` under a
/// specific dataflow's *canonical* mapping: the filter-row spatial
/// projection, no output-row tiling, and the cheaper DRAM loop order —
/// exactly the two points of the mapping space the pre-search model
/// hardwired (asserted bit-identical in the tests below).
#[must_use]
pub fn count_accesses_with(
    config: AcceleratorConfig,
    layer: &Layer,
    dataflow: Dataflow,
) -> AccessCounts {
    let engine = Engine::canonical(dataflow);
    let at_order = |order| {
        count_accesses_mapped(
            config,
            layer,
            Mapping {
                engine,
                schedule: Schedule { order, ow_tile: 1 },
            },
        )
    };
    let wo = at_order(LoopOrder::WeightsOuter);
    let io = at_order(LoopOrder::IfmapOuter);
    // Loop order only moves DRAM traffic, so this reproduces the old
    // model's min-refetch term.
    if io.dram_words < wo.dram_words {
        io
    } else {
        wo
    }
}

/// Counts the storage-hierarchy actions for `layer` on `config` under an
/// arbitrary point of the mapping space — the generalization of
/// [`count_accesses_with`] the per-layer search sweeps.
#[must_use]
pub fn count_accesses_mapped(
    config: AcceleratorConfig,
    layer: &Layer,
    mapping: Mapping,
) -> AccessCounts {
    let macs = layer.macs() as f64;
    let k = f64::from(layer.kernel).max(1.0);
    let out_w = f64::from(layer.output_w()).max(1.0);
    let out_h = f64::from(layer.output_h()).max(1.0);
    let out_c = f64::from(layer.out_channels).max(1.0);

    // Spatial projection: the engine decides how layer parallelism lands
    // on the grid. Dimension quantization matters: a 28-wide axis running
    // a 64-filter layer needs ceil(64/28) = 3 passes, so the *effective*
    // parallelism is 64/3 = 21.3 — mismatched shapes waste cycles (and
    // therefore leakage), which is what per-layer specialization recovers.
    let (m_par, row_par) = mapping.engine.spatial.parallelism(config, out_c, out_h);
    let utilization = (m_par * row_par) / f64::from(config.pes());

    // RF traffic: two operand reads plus one accumulator update per MAC.
    let rf_accesses = 3.0 * macs;

    // Output-row tiling: processing each output row in `t` segments
    // shrinks the psum working set by `t` but forfeits cross-segment
    // array-level reuse — weights re-fetch per segment under RS, ifmap
    // halo columns re-read under WS.
    let t_eff = f64::from(mapping.schedule.ow_tile).min(out_w);
    let tile_w = out_w / t_eff;

    // Global-buffer traffic with RF- and array-level reuse, per dataflow.
    let (glb_ifmap, glb_weight) = match mapping.engine.dataflow {
        // RS: ifmaps reused across k kernel rows in the RF and multicast to
        // m_par filters; weights reused along a tile of an output row and
        // across the row_par output rows mapped on the array.
        Dataflow::RowStationary => (macs / (m_par * k), macs / (row_par * tile_w)),
        // WS: weights pinned in PEs stream from the buffer exactly once —
        // multi-pass re-fetch happens at the DRAM level, where the loop
        // order charges it (formerly an always-1.0 pass factor here).
        // Ifmap activations stream once per kernel window, with k-1
        // overlap columns re-read at every tile seam.
        Dataflow::WeightStationary => {
            let weights = layer.weights() as f64;
            let halo = 1.0 + (t_eff - 1.0) * (k - 1.0) / out_w;
            ((macs / m_par) * halo, weights)
        }
    };
    // Partial sums leave the RF once per kernel-row accumulation; if the
    // psum buffer cannot hold one output-row tile for every mapped filter
    // the spill factor grows.
    let psum_working_set = tile_w * m_par * PSUM_BYTES;
    let psum_capacity = f64::from(config.psum_kib) * 1024.0;
    let psum_spill = (psum_working_set / psum_capacity).max(1.0);
    let glb_psum = 2.0 * macs / (k * k) * psum_spill;
    let glb_accesses = glb_ifmap + glb_weight + glb_psum;

    // NoC transfers mirror buffer-to-array traffic.
    let noc_transfers = glb_ifmap + glb_weight;

    // DRAM: every tensor at least once; the outer loop's resident tensor
    // forces re-fetching of the streaming one once per resident tile
    // beyond the first.
    let ifmap_bytes = layer.input_activations() as f64 * WORD_BYTES;
    let weight_bytes = layer.weights() as f64 * WORD_BYTES;
    let output_bytes = layer.output_activations() as f64 * WORD_BYTES;
    let ifmap_passes = (ifmap_bytes / (f64::from(config.ifmap_kib) * 1024.0))
        .ceil()
        .max(1.0);
    let weight_passes = (weight_bytes / (f64::from(config.weight_kib) * 1024.0))
        .ceil()
        .max(1.0);
    let refetch = match mapping.schedule.order {
        LoopOrder::WeightsOuter => ifmap_bytes * (weight_passes - 1.0),
        LoopOrder::IfmapOuter => weight_bytes * (ifmap_passes - 1.0),
    };
    let dram_bytes = ifmap_bytes + weight_bytes + output_bytes + refetch;
    let dram_words = dram_bytes / WORD_BYTES;
    let dram_refetch_words = refetch / WORD_BYTES;

    // Cycles: utilization-limited MAC issue.
    let cycles = macs / (m_par * row_par);

    AccessCounts {
        macs,
        rf_accesses,
        noc_transfers,
        glb_accesses,
        dram_words,
        dram_refetch_words,
        cycles,
        utilization,
    }
}

/// Energy for one inference of `layer` on `config`.
///
/// # Examples
///
/// ```
/// use sudc_accel::dataflow::layer_energy;
/// use sudc_accel::design::AcceleratorConfig;
/// use sudc_accel::energy::EnergyTable;
/// use sudc_compute::networks::Layer;
///
/// let layer = Layer::conv(56, 56, 64, 128, 3, 1);
/// let e = layer_energy(AcceleratorConfig::reference(), &EnergyTable::eyeriss_45nm(), &layer);
/// assert!(e.value() > 0.0);
/// ```
#[must_use]
pub fn layer_energy(config: AcceleratorConfig, table: &EnergyTable, layer: &Layer) -> Joules {
    let c = count_accesses(config, layer);
    let glb_pj = table.glb_access_pj(f64::from(config.total_buffer_kib()));
    Joules::new(picojoules_of(config, table, glb_pj, &c) * 1e-12)
}

/// Energy for one inference of `layer` under an arbitrary mapping.
#[must_use]
pub fn layer_energy_mapped(
    config: AcceleratorConfig,
    table: &EnergyTable,
    layer: &Layer,
    mapping: Mapping,
) -> Joules {
    let c = count_accesses_mapped(config, layer, mapping);
    let glb_pj = table.glb_access_pj(f64::from(config.total_buffer_kib()));
    Joules::new(picojoules_of(config, table, glb_pj, &c) * 1e-12)
}

/// Energy of a set of access counts on a design, picojoules — the one
/// formula every energy path (canonical, mapped, sweep, pruning floor)
/// shares. `glb_pj` is the config's buffer access energy, hoisted out so
/// the sweep computes the square root once per config.
#[must_use]
pub fn picojoules_of(
    config: AcceleratorConfig,
    table: &EnergyTable,
    glb_pj: f64,
    c: &AccessCounts,
) -> f64 {
    // NoC hop energy grows with array extent (wire length).
    let wire_scale = f64::from(config.pe_x.max(config.pe_y)) / 16.0;
    // Re-fetch words cost a row-buffer-locality premium in both energy
    // and effective bandwidth.
    let dram_eff = table.dram_effective_words(c.dram_words, c.dram_refetch_words);
    // Roofline: a memory-bound layer stalls the array for the full DRAM
    // transfer, and the whole design leaks for that long — re-fetch from
    // an undersized buffer costs access energy *and* stall time.
    let wall_cycles = c.cycles.max(dram_eff / table.dram_words_per_cycle);
    c.macs * table.mac_pj
        + c.rf_accesses * table.rf_pj
        + c.noc_transfers * table.noc_pj * wire_scale
        + c.glb_accesses * glb_pj
        + dram_eff * table.dram_pj
        + wall_cycles
            * table.leakage_pj_per_cycle(
                f64::from(config.pes()),
                f64::from(config.total_buffer_kib()),
            )
}

/// Energy for one inference of a whole network on `config` (the pipelined
/// per-layer designs of Fig. 18 sum layer energies the same way; pipelining
/// changes latency, not energy).
#[must_use]
pub fn network_energy(config: AcceleratorConfig, table: &EnergyTable, network: &Network) -> Joules {
    network
        .layers
        .iter()
        .map(|l| layer_energy(config, table, l))
        .sum()
}

/// Energy-efficiency of a layer on a config, MACs per joule (higher is
/// better) — the quantity whose geometric mean drives design selection.
#[must_use]
pub fn layer_efficiency(config: AcceleratorConfig, table: &EnergyTable, layer: &Layer) -> f64 {
    let e = layer_energy(config, table, layer);
    layer.macs() as f64 / e.value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sudc_compute::networks::NetworkId;

    fn table() -> EnergyTable {
        EnergyTable::eyeriss_45nm()
    }

    #[test]
    fn energy_is_positive_for_all_layers_of_all_networks() {
        let cfg = AcceleratorConfig::reference();
        for id in NetworkId::all() {
            for layer in &id.network().layers {
                let e = layer_energy(cfg, &table(), layer);
                assert!(e.value() > 0.0 && e.is_finite());
            }
        }
    }

    #[test]
    fn network_energy_is_sum_of_layers() {
        let cfg = AcceleratorConfig::reference();
        let net = NetworkId::ResNet50.network();
        let total = network_energy(cfg, &table(), &net);
        let sum: Joules = net
            .layers
            .iter()
            .map(|l| layer_energy(cfg, &table(), l))
            .sum();
        assert!((total - sum).abs() < Joules::new(1e-12));
    }

    #[test]
    fn utilization_is_a_fraction() {
        let cfg = AcceleratorConfig::reference();
        for layer in &NetworkId::UNet.network().layers {
            let c = count_accesses(cfg, layer);
            assert!(c.utilization > 0.0 && c.utilization <= 1.0);
        }
    }

    #[test]
    fn small_layers_underutilize_big_arrays() {
        let big = AcceleratorConfig {
            pe_x: 28,
            pe_y: 32,
            ..AcceleratorConfig::reference()
        };
        // A 1x1x16-channel layer cannot fill 28 columns.
        let tiny = Layer::conv(32, 32, 128, 16, 1, 1);
        let c = count_accesses(big, &tiny);
        assert!(c.utilization < 0.6);
    }

    #[test]
    fn fc_layers_get_no_weight_reuse() {
        let cfg = AcceleratorConfig::reference();
        let fc = Layer::dense(2048, 1000);
        let c = count_accesses(cfg, &fc);
        // Every weight must be fetched at least once from the buffer.
        assert!(c.glb_accesses >= fc.weights() as f64);
    }

    #[test]
    fn bigger_weight_buffer_reduces_dram_refetch() {
        let small = AcceleratorConfig {
            weight_kib: 16,
            ..AcceleratorConfig::reference()
        };
        let big = AcceleratorConfig {
            weight_kib: 128,
            ..AcceleratorConfig::reference()
        };
        // A weight-heavy layer that exceeds 16 KiB of weights.
        let layer = Layer::conv(14, 14, 512, 512, 3, 1);
        let c_small = count_accesses(small, &layer);
        let c_big = count_accesses(big, &layer);
        assert!(c_big.dram_words <= c_small.dram_words);
    }

    #[test]
    fn accelerator_energy_per_mac_is_a_few_picojoules() {
        let cfg = AcceleratorConfig::reference();
        let net = NetworkId::ResNet50.network();
        let e = network_energy(cfg, &table(), &net);
        let pj_per_mac = e.value() * 1e12 / net.total_macs() as f64;
        assert!(
            pj_per_mac > 3.0 && pj_per_mac < 40.0,
            "expected single-digit-to-tens pJ/MAC, got {pj_per_mac}"
        );
    }

    #[test]
    fn weight_stationary_wins_on_pointwise_convolutions() {
        // 1x1 convs have no kernel-row reuse for RS to exploit, while WS
        // fetches each weight exactly once.
        let cfg = AcceleratorConfig::reference();
        let pointwise = Layer::conv(56, 56, 256, 64, 1, 1);
        let rs = count_accesses_with(cfg, &pointwise, Dataflow::RowStationary);
        let ws = count_accesses_with(cfg, &pointwise, Dataflow::WeightStationary);
        assert!(ws.glb_accesses < rs.glb_accesses);
        let chosen = count_accesses(cfg, &pointwise);
        assert!((chosen.glb_accesses - ws.glb_accesses).abs() < 1.0);
    }

    #[test]
    fn row_stationary_wins_on_large_kernel_convolutions() {
        let cfg = AcceleratorConfig::reference();
        let spatial = Layer::conv(112, 112, 64, 64, 7, 1);
        let rs = count_accesses_with(cfg, &spatial, Dataflow::RowStationary);
        let ws = count_accesses_with(cfg, &spatial, Dataflow::WeightStationary);
        assert!(rs.glb_accesses < ws.glb_accesses);
    }

    #[test]
    fn mapper_choice_never_exceeds_either_dataflow() {
        let cfg = AcceleratorConfig::reference();
        for layer in &NetworkId::DenseNet121.network().layers {
            let best = count_accesses(cfg, layer);
            for df in Dataflow::all() {
                let fixed = count_accesses_with(cfg, layer, df);
                assert!(
                    best.glb_accesses + best.dram_words
                        <= fixed.glb_accesses + fixed.dram_words + 1e-9
                );
            }
        }
    }

    /// The pre-mapping-search model, verbatim (including the
    /// algebraically-inert WS pass factor): the oracle proving the two
    /// canonical dataflows are *exact special cases* of the mapped model.
    fn legacy_counts(config: AcceleratorConfig, layer: &Layer, dataflow: Dataflow) -> AccessCounts {
        let macs = layer.macs() as f64;
        let k = f64::from(layer.kernel).max(1.0);
        let out_w = f64::from(layer.output_w()).max(1.0);
        let out_h = f64::from(layer.output_h()).max(1.0);
        let out_c = f64::from(layer.out_channels).max(1.0);
        let m_par = out_c / (out_c / f64::from(config.pe_x)).ceil();
        let row_par = out_h / (out_h / f64::from(config.pe_y)).ceil();
        let utilization = (m_par * row_par) / f64::from(config.pes());
        let rf_accesses = 3.0 * macs;
        let (glb_ifmap, glb_weight) = match dataflow {
            Dataflow::RowStationary => (macs / (m_par * k), macs / (row_par * out_w)),
            Dataflow::WeightStationary => {
                let weights = layer.weights() as f64;
                (
                    macs / m_par,
                    weights * (macs / (weights * out_w * out_h)).max(1.0),
                )
            }
        };
        let psum_working_set = out_w * m_par * PSUM_BYTES;
        let psum_capacity = f64::from(config.psum_kib) * 1024.0;
        let psum_spill = (psum_working_set / psum_capacity).max(1.0);
        let glb_psum = 2.0 * macs / (k * k) * psum_spill;
        let glb_accesses = glb_ifmap + glb_weight + glb_psum;
        let noc_transfers = glb_ifmap + glb_weight;
        let ifmap_bytes = layer.input_activations() as f64 * WORD_BYTES;
        let weight_bytes = layer.weights() as f64 * WORD_BYTES;
        let output_bytes = layer.output_activations() as f64 * WORD_BYTES;
        let ifmap_passes = (ifmap_bytes / (f64::from(config.ifmap_kib) * 1024.0))
            .ceil()
            .max(1.0);
        let weight_passes = (weight_bytes / (f64::from(config.weight_kib) * 1024.0))
            .ceil()
            .max(1.0);
        let refetch =
            (ifmap_bytes * (weight_passes - 1.0)).min(weight_bytes * (ifmap_passes - 1.0));
        let dram_bytes = ifmap_bytes + weight_bytes + output_bytes + refetch;
        let dram_words = dram_bytes / WORD_BYTES;
        let cycles = macs / (m_par * row_par);
        AccessCounts {
            macs,
            rf_accesses,
            noc_transfers,
            glb_accesses,
            dram_words,
            dram_refetch_words: refetch / WORD_BYTES,
            cycles,
            utilization,
        }
    }

    #[test]
    fn canonical_dataflows_are_exact_special_cases_of_the_mapped_model() {
        let configs = [
            AcceleratorConfig::reference(),
            AcceleratorConfig {
                pe_x: 28,
                pe_y: 4,
                ifmap_kib: 8,
                weight_kib: 8,
                psum_kib: 8,
            },
            AcceleratorConfig {
                pe_x: 4,
                pe_y: 32,
                ifmap_kib: 128,
                weight_kib: 128,
                psum_kib: 64,
            },
        ];
        for config in configs {
            for id in NetworkId::all() {
                for layer in &id.network().layers {
                    for df in Dataflow::all() {
                        let legacy = legacy_counts(config, layer, df);
                        let mapped = count_accesses_with(config, layer, df);
                        assert_eq!(mapped, legacy, "{df:?} on {layer:?} @ {config}");
                    }
                }
            }
        }
    }

    #[test]
    fn ws_glb_weight_is_exactly_one_pass_even_when_weights_exceed_the_buffer() {
        // 512×512×3×3 weights = 4.5 MiB ≫ any weight buffer in the space,
        // so the old "pass count" factor would be the natural place for
        // re-fetch inflation — but it was algebraically always 1.0
        // (macs = weights · out_w · out_h identically). The simplified
        // model pins GLB weight traffic to exactly one pass and charges
        // multi-pass re-fetch at the DRAM level via the loop order.
        let config = AcceleratorConfig {
            weight_kib: 8,
            ..AcceleratorConfig::reference()
        };
        let layer = Layer::conv(14, 14, 512, 512, 3, 1);
        assert!(layer.weights() as f64 * 2.0 > f64::from(config.weight_kib) * 1024.0);
        let ws = count_accesses_with(config, &layer, Dataflow::WeightStationary);
        let weights = layer.weights() as f64;
        // Canonical projection: m_par = quantized(out_c = 512, pe_x = 16).
        let m_par = 512.0 / (512.0_f64 / 16.0).ceil();
        // noc = glb_ifmap + glb_weight and glb_ifmap = macs / m_par here.
        let glb_weight = ws.noc_transfers - ws.macs / m_par;
        assert!(
            (glb_weight - weights).abs() <= 1e-6 * weights,
            "glb_weight {glb_weight} vs weights {weights}"
        );
        // The legacy expression agrees (its pass factor was inert).
        let legacy = legacy_counts(config, &layer, Dataflow::WeightStationary);
        assert_eq!(ws, legacy);
        // And the DRAM side *does* see the multi-pass cost.
        let compulsory =
            (layer.input_activations() + layer.weights() + layer.output_activations()) as f64;
        assert!(ws.dram_words > compulsory, "re-fetch must appear in DRAM");
    }

    #[test]
    fn output_row_tiling_trades_psum_spill_for_refetch() {
        // A wide layer with many mapped filters overflows a small psum
        // buffer; tiling the output row shrinks the working set (fewer
        // GLB psum spills) while inflating RS weight traffic.
        let config = AcceleratorConfig {
            psum_kib: 8,
            ..AcceleratorConfig::reference()
        };
        let layer = Layer::conv(112, 112, 64, 64, 3, 1);
        // Grid projection maps all 64 filters at once: the untiled psum
        // working set (112 · 64 · 4 B = 28 KiB) overflows the 8 KiB
        // buffer, while a 4-way tile (7 KiB) fits.
        let engine = Engine {
            dataflow: Dataflow::RowStationary,
            spatial: crate::mapping::SpatialMap::FilterGrid,
        };
        let at_tile = |t| {
            count_accesses_mapped(
                config,
                &layer,
                Mapping {
                    engine,
                    schedule: Schedule {
                        order: LoopOrder::WeightsOuter,
                        ow_tile: t,
                    },
                },
            )
        };
        let untiled = at_tile(1);
        let tiled = at_tile(4);
        assert!(tiled.noc_transfers > untiled.noc_transfers, "re-fetch cost");
        assert!(
            tiled.glb_accesses - tiled.noc_transfers < untiled.glb_accesses - untiled.noc_transfers,
            "psum spill benefit"
        );
        assert_eq!(tiled.cycles, untiled.cycles, "tiling is traffic-only");
    }

    #[test]
    fn efficiency_is_reciprocal_of_energy_per_mac() {
        let cfg = AcceleratorConfig::reference();
        let layer = Layer::conv(28, 28, 256, 256, 3, 1);
        let eff = layer_efficiency(cfg, &table(), &layer);
        let e = layer_energy(cfg, &table(), &layer);
        assert!((eff - layer.macs() as f64 / e.value()).abs() / eff < 1e-12);
    }
}
