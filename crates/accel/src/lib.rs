//! Accelerator design-space exploration for extreme heterogeneity (paper §IV).
//!
//! The paper uses the Timeloop/Accelergy framework to explore 7 168
//! Eyeriss-like row-stationary accelerator designs and finds that:
//!
//! - a single **global** accelerator (best geomean efficiency across all
//!   network layers) improves energy efficiency ~57.8× over a commodity GPU;
//! - **per-network** accelerators improve further;
//! - **per-layer** accelerators (one design per layer — extreme
//!   heterogeneity) reach ~116× on average.
//!
//! This crate implements the same class of analytical model: MAC energy plus
//! hierarchical buffer/NoC/DRAM access counting under a row-stationary
//! mapping, swept over the same design-space axes (PE-array X/Y dimensions
//! and input/weight/accumulation buffer sizes).
//!
//! - [`energy`] — per-access energy table (Accelergy's role);
//! - [`design`] — the accelerator configuration and the 7 168-point space;
//! - [`dataflow`] — row-stationary access counting (Timeloop's role);
//! - [`dse`] — sweep, selection (global / per-network / per-layer), and
//!   efficiency-improvement reporting (Fig. 17); the sweep runs chunked
//!   across the [`sudc_par`] executor, bit-identical to its serial oracle;
//! - [`memo`] — per-`(config, layer-shape)` efficiency memoization;
//! - [`pipeline`] — per-layer pipeline timing and double-buffer sizing
//!   (Fig. 18).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataflow;
pub mod design;
pub mod dse;
pub mod energy;
pub mod mapping;
pub mod memo;
pub mod pipeline;

pub use design::AcceleratorConfig;
pub use dse::{DseOutcome, SystemArchitecture};
pub use mapping::{Engine, Mapping, Schedule};
