//! Per-access energy table — the Accelergy role in the paper's framework.
//!
//! Values follow the well-known Eyeriss energy hierarchy (Chen et al.):
//! relative to a 16-bit MAC, a register-file access is cheap, a NoC hop and
//! global-buffer access cost a few ×, and DRAM costs ~100–200×. Buffer
//! access energy grows with capacity (CACTI-style ~√size scaling).

/// Energy per elementary action, picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyTable {
    /// One 16-bit multiply-accumulate.
    pub mac_pj: f64,
    /// One PE register-file access.
    pub rf_pj: f64,
    /// One on-chip network hop (PE-to-PE / buffer-to-PE).
    pub noc_pj: f64,
    /// One global-buffer access at the reference capacity.
    pub glb_base_pj: f64,
    /// Reference global-buffer capacity for `glb_base_pj`, KiB.
    pub glb_reference_kib: f64,
    /// One DRAM access per 16-bit word.
    pub dram_pj: f64,
    /// Static/leakage energy per PE per cycle.
    pub static_pe_pj: f64,
    /// Fixed system energy per cycle regardless of array size (control,
    /// clock tree, DRAM interface idle) — this is what makes undersized
    /// arrays pay for their longer runtimes.
    pub system_static_pj: f64,
}

impl EnergyTable {
    /// The classic Eyeriss 45/65 nm-era energy hierarchy (kept for
    /// reference and cross-checking against the published numbers).
    #[must_use]
    pub fn eyeriss_45nm() -> Self {
        Self {
            mac_pj: 2.2,
            rf_pj: 1.0,
            noc_pj: 2.0,
            glb_base_pj: 6.0,
            glb_reference_kib: 64.0,
            dram_pj: 200.0,
            static_pe_pj: 0.5,
            system_static_pj: 120.0,
        }
    }

    /// Same-node (Samsung 8 nm-class, the RTX 3090's node) energy
    /// hierarchy — the table the DSE uses so the accelerator-vs-GPU
    /// comparison is iso-technology, as in the paper's limit study.
    /// Logic energies scale down ~7× from the 45 nm-era table; DRAM
    /// interface energy scales much less.
    #[must_use]
    pub fn samsung_8nm_class() -> Self {
        Self {
            mac_pj: 0.25,
            rf_pj: 0.1,
            noc_pj: 0.22,
            glb_base_pj: 0.8,
            glb_reference_kib: 64.0,
            dram_pj: 120.0,
            static_pe_pj: 0.5,
            system_static_pj: 40.0,
        }
    }

    /// Access energy of a global buffer of `capacity_kib`, pJ.
    ///
    /// Scales as the square root of capacity around the reference point
    /// (CACTI-style wordline/bitline growth).
    ///
    /// # Panics
    ///
    /// Panics if `capacity_kib` is not positive.
    #[must_use]
    pub fn glb_access_pj(&self, capacity_kib: f64) -> f64 {
        assert!(
            capacity_kib > 0.0,
            "buffer capacity must be positive, got {capacity_kib}"
        );
        self.glb_base_pj * (capacity_kib / self.glb_reference_kib).sqrt()
    }
}

impl EnergyTable {
    /// Rescales the table's arithmetic and traffic energies for a numeric
    /// precision (the shipped tables assume 16-bit operands).
    #[must_use]
    pub fn for_precision(mut self, precision: sudc_compute::precision::Precision) -> Self {
        use sudc_compute::precision::Precision;
        let base = Precision::Fp16;
        let mac_scale = precision.mac_energy_factor() / base.mac_energy_factor();
        let width_scale = f64::from(precision.bits()) / f64::from(base.bits());
        self.mac_pj *= mac_scale;
        self.rf_pj *= width_scale;
        self.noc_pj *= width_scale;
        self.glb_base_pj *= width_scale;
        self.dram_pj *= width_scale;
        self
    }
}

impl Default for EnergyTable {
    fn default() -> Self {
        Self::samsung_8nm_class()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_is_ordered() {
        let t = EnergyTable::eyeriss_45nm();
        assert!(t.rf_pj < t.noc_pj);
        assert!(t.noc_pj < t.glb_base_pj);
        assert!(t.glb_base_pj < t.dram_pj);
        assert!(t.dram_pj / t.mac_pj > 50.0, "DRAM must dominate MACs");
    }

    #[test]
    fn glb_energy_scales_with_sqrt_capacity() {
        let t = EnergyTable::eyeriss_45nm();
        let e64 = t.glb_access_pj(64.0);
        let e256 = t.glb_access_pj(256.0);
        assert!((e256 / e64 - 2.0).abs() < 1e-9);
        assert!((e64 - t.glb_base_pj).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = EnergyTable::eyeriss_45nm().glb_access_pj(0.0);
    }

    #[test]
    fn precision_rescaling_orders_tables() {
        use sudc_compute::precision::Precision;
        let base = EnergyTable::samsung_8nm_class();
        let int8 = base.for_precision(Precision::Int8);
        let fp32 = base.for_precision(Precision::Fp32);
        assert!(int8.mac_pj < base.mac_pj);
        assert!(fp32.mac_pj > base.mac_pj);
        assert!(int8.dram_pj < fp32.dram_pj);
        // FP16 is the identity.
        let same = base.for_precision(Precision::Fp16);
        assert!((same.mac_pj - base.mac_pj).abs() < 1e-12);
    }
}
