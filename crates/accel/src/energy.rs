//! Per-access energy table — the Accelergy role in the paper's framework.
//!
//! Values follow the well-known Eyeriss energy hierarchy (Chen et al.):
//! relative to a 16-bit MAC, a register-file access is cheap, a NoC hop and
//! global-buffer access cost a few ×, and DRAM costs ~100–200×. Buffer
//! access energy grows with capacity (CACTI-style ~√size scaling).

/// Energy per elementary action, picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyTable {
    /// One 16-bit multiply-accumulate.
    pub mac_pj: f64,
    /// One PE register-file access.
    pub rf_pj: f64,
    /// One on-chip network hop (PE-to-PE / buffer-to-PE).
    pub noc_pj: f64,
    /// One global-buffer access at the reference capacity.
    pub glb_base_pj: f64,
    /// Reference global-buffer capacity for `glb_base_pj`, KiB.
    pub glb_reference_kib: f64,
    /// One DRAM access per 16-bit word.
    pub dram_pj: f64,
    /// Static/leakage energy per PE per cycle.
    pub static_pe_pj: f64,
    /// SRAM leakage per KiB of on-chip buffering per cycle. Retention
    /// power is proportional to capacity, so a design provisioned with
    /// large buffers pays this on *every* cycle of *every* layer — the
    /// physical reason a per-layer design (small buffers where the
    /// working set is small) beats a global compromise.
    pub static_sram_pj_per_kib: f64,
    /// Fixed system energy per cycle regardless of array size (control,
    /// clock tree, DRAM interface idle) — this is what makes undersized
    /// arrays pay for their longer runtimes.
    pub system_static_pj: f64,
    /// DRAM interface bandwidth, 16-bit words per array cycle. A layer
    /// whose DRAM traffic exceeds `compute_cycles × bandwidth` runs
    /// memory-bound: the array stalls and leaks for the full transfer
    /// time (roofline coupling). Undersized buffers therefore cost twice
    /// — refetch energy *and* stall leakage.
    pub dram_words_per_cycle: f64,
    /// Energy-and-bandwidth premium per *re-fetched* DRAM word relative
    /// to compulsory streaming traffic (≥ 1). Compulsory first-touch
    /// streams amortize row activations over long bursts; multi-pass
    /// re-fetch from an undersized buffer re-opens rows and loses that
    /// locality, so each re-fetched word costs more energy and consumes
    /// more of the interface's effective bandwidth.
    pub dram_refetch_pj_factor: f64,
}

impl EnergyTable {
    /// The classic Eyeriss 45/65 nm-era energy hierarchy (kept for
    /// reference and cross-checking against the published numbers).
    #[must_use]
    pub fn eyeriss_45nm() -> Self {
        Self {
            mac_pj: 2.2,
            rf_pj: 1.0,
            noc_pj: 2.0,
            glb_base_pj: 6.0,
            glb_reference_kib: 64.0,
            dram_pj: 200.0,
            static_pe_pj: 0.25,
            static_sram_pj_per_kib: 0.8,
            system_static_pj: 56.0,
            dram_words_per_cycle: 4.0,
            dram_refetch_pj_factor: 1.0,
        }
    }

    /// Same-node (Samsung 8 nm-class, the RTX 3090's node) energy
    /// hierarchy — the table the DSE uses so the accelerator-vs-GPU
    /// comparison is iso-technology, as in the paper's limit study.
    /// Dynamic access energies scale down steeply from the 45 nm-era
    /// table (logic scales far better than wires and DRAM interfaces),
    /// while leakage becomes a first-order term at 8 nm — the static
    /// entries here are calibrated, together with the DRAM roofline,
    /// so the sweep reproduces Fig. 17's improvement hierarchy (~50×
    /// global, per-layer ≈ 2× global).
    #[must_use]
    pub fn samsung_8nm_class() -> Self {
        Self {
            mac_pj: 0.02,
            rf_pj: 0.008,
            noc_pj: 0.03,
            glb_base_pj: 0.08,
            glb_reference_kib: 64.0,
            dram_pj: 14.0,
            static_pe_pj: 0.9,
            static_sram_pj_per_kib: 6.0,
            system_static_pj: 150.0,
            dram_words_per_cycle: 5.0,
            dram_refetch_pj_factor: 1.5,
        }
    }

    /// Validates the table for use in the cost model: dynamic access
    /// energies must be positive and finite (a zero or NaN energy turns
    /// every downstream geomean into noise), leakage terms non-negative.
    ///
    /// # Errors
    /// Returns a [`sudc_errors::SudcError`] listing every bad entry.
    pub fn try_validate(&self) -> Result<Self, sudc_errors::SudcError> {
        let mut d = sudc_errors::Diagnostics::new("EnergyTable");
        d.positive("mac_pj", self.mac_pj);
        d.positive("rf_pj", self.rf_pj);
        d.positive("noc_pj", self.noc_pj);
        d.positive("glb_base_pj", self.glb_base_pj);
        d.positive("glb_reference_kib", self.glb_reference_kib);
        d.positive("dram_pj", self.dram_pj);
        d.non_negative("static_pe_pj", self.static_pe_pj);
        d.non_negative("static_sram_pj_per_kib", self.static_sram_pj_per_kib);
        d.non_negative("system_static_pj", self.system_static_pj);
        d.positive("dram_words_per_cycle", self.dram_words_per_cycle);
        d.ensure(
            self.dram_refetch_pj_factor.is_finite() && self.dram_refetch_pj_factor >= 1.0,
            "dram_refetch_pj_factor",
            self.dram_refetch_pj_factor,
            "finite and >= 1",
        );
        d.into_result(*self)
    }

    /// Access energy of a global buffer of `capacity_kib`, pJ.
    ///
    /// Scales as the square root of capacity around the reference point
    /// (CACTI-style wordline/bitline growth).
    ///
    /// # Panics
    ///
    /// Panics if `capacity_kib` is not positive.
    #[must_use]
    pub fn glb_access_pj(&self, capacity_kib: f64) -> f64 {
        assert!(
            capacity_kib > 0.0,
            "buffer capacity must be positive, got {capacity_kib}"
        );
        self.glb_base_pj * (capacity_kib / self.glb_reference_kib).sqrt()
    }

    /// Effective DRAM word count for energy and roofline purposes:
    /// compulsory words at par, re-fetched words at the row-buffer
    /// premium.
    #[must_use]
    pub fn dram_effective_words(&self, total_words: f64, refetch_words: f64) -> f64 {
        total_words + (self.dram_refetch_pj_factor - 1.0) * refetch_words
    }

    /// Leakage energy per cycle of a design: PE leakage scales with array
    /// size, SRAM retention with provisioned buffer capacity, plus the
    /// fixed system floor. One formula shared by the cost model and the
    /// sweep's pruning bound.
    #[must_use]
    pub fn leakage_pj_per_cycle(&self, pes: f64, buffer_kib: f64) -> f64 {
        pes * self.static_pe_pj + buffer_kib * self.static_sram_pj_per_kib + self.system_static_pj
    }
}

impl EnergyTable {
    /// Rescales the table's arithmetic and traffic energies for a numeric
    /// precision (the shipped tables assume 16-bit operands).
    #[must_use]
    pub fn for_precision(mut self, precision: sudc_compute::precision::Precision) -> Self {
        use sudc_compute::precision::Precision;
        let base = Precision::Fp16;
        let mac_scale = precision.mac_energy_factor() / base.mac_energy_factor();
        let width_scale = f64::from(precision.bits()) / f64::from(base.bits());
        self.mac_pj *= mac_scale;
        self.rf_pj *= width_scale;
        self.noc_pj *= width_scale;
        self.glb_base_pj *= width_scale;
        self.dram_pj *= width_scale;
        self
    }
}

impl Default for EnergyTable {
    fn default() -> Self {
        Self::samsung_8nm_class()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_is_ordered() {
        let t = EnergyTable::eyeriss_45nm();
        assert!(t.rf_pj < t.noc_pj);
        assert!(t.noc_pj < t.glb_base_pj);
        assert!(t.glb_base_pj < t.dram_pj);
        assert!(t.dram_pj / t.mac_pj > 50.0, "DRAM must dominate MACs");
    }

    #[test]
    fn glb_energy_scales_with_sqrt_capacity() {
        let t = EnergyTable::eyeriss_45nm();
        let e64 = t.glb_access_pj(64.0);
        let e256 = t.glb_access_pj(256.0);
        assert!((e256 / e64 - 2.0).abs() < 1e-9);
        assert!((e64 - t.glb_base_pj).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = EnergyTable::eyeriss_45nm().glb_access_pj(0.0);
    }

    #[test]
    fn leakage_grows_with_array_and_buffer_capacity() {
        let t = EnergyTable::default();
        let lean = t.leakage_pj_per_cycle(64.0, 24.0);
        let lush = t.leakage_pj_per_cycle(896.0, 320.0);
        assert!(lush > lean);
        // SRAM retention must be a real specialization axis: on a
        // mid-sized array, provisioned capacity contributes on the same
        // order as the PE array itself.
        let buffers_only = t.leakage_pj_per_cycle(0.0, 160.0) - t.system_static_pj;
        let pes_only = t.leakage_pj_per_cycle(256.0, 0.0) - t.system_static_pj;
        assert!(buffers_only > 0.2 * pes_only);
    }

    #[test]
    fn validation_accepts_shipped_tables_and_rejects_hostile_ones() {
        assert!(EnergyTable::eyeriss_45nm().try_validate().is_ok());
        assert!(EnergyTable::samsung_8nm_class().try_validate().is_ok());
        let bad = EnergyTable {
            glb_base_pj: 0.0,
            dram_pj: f64::NAN,
            ..EnergyTable::default()
        };
        let err = bad.try_validate().unwrap_err();
        assert_eq!(err.violations().len(), 2);
        assert!(err.to_string().contains("glb_base_pj"));
        assert!(err.to_string().contains("dram_pj"));
    }

    #[test]
    fn precision_rescaling_orders_tables() {
        use sudc_compute::precision::Precision;
        let base = EnergyTable::samsung_8nm_class();
        let int8 = base.for_precision(Precision::Int8);
        let fp32 = base.for_precision(Precision::Fp32);
        assert!(int8.mac_pj < base.mac_pj);
        assert!(fp32.mac_pj > base.mac_pj);
        assert!(int8.dram_pj < fp32.dram_pj);
        // FP16 is the identity.
        let same = base.for_precision(Precision::Fp16);
        assert!((same.mac_pj - base.mac_pj).abs() < 1e-12);
    }
}
