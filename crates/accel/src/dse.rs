//! Design-space sweep, accelerator selection, and Fig. 17's
//! energy-efficiency improvements.
//!
//! Selection follows the paper exactly: "In order to determine the globally
//! optimal (energy minimizing) design, we use a geometric mean of each
//! design's energy efficiency on all neural network layers. Similarly, to
//! determine the per-network optimal design, we use geometric mean of each
//! design's energy efficiency on all layers of the network." Per-layer
//! designs simply take the best design for every individual layer.
//!
//! A *design point* here is an [`AcceleratorConfig`] × a hardwired mapping
//! [`Engine`] (dataflow × spatial projection): 7 168 configurations × 6
//! engines. Software [`Schedule`]s (loop order × output-row tiling) are
//! searched per layer on every design point — see [`crate::mapping`] —
//! through the shape-deduplicated [`LayerMemo`], with energy lower-bound
//! pruning inside each schedule search. The sweep runs chunked across the
//! [`sudc_par`] executor and is bit-identical to its serial oracle at any
//! worker count: chunk results merge left-to-right with a strictly-greater
//! test on flat `(config, engine)` indices, so ties resolve to the lowest
//! index exactly as in the serial loop.
//!
//! The GPU baseline is derived from the Table III measurements: the
//! effective energy per useful MAC on the RTX 3090 is
//! `P / (peak_FP32 · utilization / 2)` scaled by a framework-overhead
//! factor (NVML wall-clock power includes memory, host synchronization,
//! and idle-SM draw that the utilization counter does not capture).

use std::collections::BTreeMap;

use sudc_compute::hardware::rtx_3090;
use sudc_compute::networks::{Network, NetworkId};
use sudc_compute::workloads::{self, Workload};
use sudc_errors::{Diagnostics, SudcError};
use sudc_units::Joules;

use crate::design::{design_space, AcceleratorConfig};
use crate::energy::EnergyTable;
use crate::mapping::{self, Engine, SearchCounters, ENGINE_COUNT};
use crate::memo::LayerMemo;

/// Framework overhead on the GPU baseline: measured wall-power × time
/// divided by utilization-derived useful MACs understates per-MAC energy,
/// because cuDNN/TensorFlow inference also spends energy on memory traffic,
/// host sync, and idle SMs.
const GPU_FRAMEWORK_OVERHEAD: f64 = 4.8;

/// The compute system architectures compared in Figs. 17–18.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SystemArchitecture {
    /// Commodity GPU baseline (RTX 3090).
    CommodityGpu,
    /// One accelerator design shared by every workload (Fig. 18a).
    GlobalAccelerator,
    /// One accelerator design per network (Fig. 18b).
    PerNetworkAccelerator,
    /// One accelerator design per layer — extreme heterogeneity (Fig. 18c).
    PerLayerAccelerator,
}

impl core::fmt::Display for SystemArchitecture {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Self::CommodityGpu => "Commodity GPU",
            Self::GlobalAccelerator => "Global Accelerator",
            Self::PerNetworkAccelerator => "Per-Network Accelerator",
            Self::PerLayerAccelerator => "Per-Layer Accelerator",
        };
        f.write_str(s)
    }
}

/// Effective GPU energy per MAC for a workload, joules.
#[must_use]
pub fn gpu_joules_per_mac(workload: &Workload) -> f64 {
    let gpu = rtx_3090();
    let peak_flops = gpu.fp32.value() * 1e12;
    let useful_mac_rate = peak_flops * workload.utilization / 2.0;
    workload.gpu_power.value() / useful_mac_rate * GPU_FRAMEWORK_OVERHEAD
}

/// [`gpu_joules_per_mac`] with validated inputs: a zero-utilization or
/// non-finite workload would otherwise flow `inf`/NaN into every geomean
/// downstream.
///
/// # Errors
/// Returns a [`SudcError`] naming each offending field.
pub fn try_gpu_joules_per_mac(workload: &Workload) -> Result<f64, SudcError> {
    let mut d = Diagnostics::new("Workload");
    if d.finite("utilization", workload.utilization) {
        d.in_range("utilization", workload.utilization, f64::MIN_POSITIVE, 1.0);
    }
    if d.finite("gpu_power_w", workload.gpu_power.value()) {
        d.positive("gpu_power_w", workload.gpu_power.value());
    }
    d.into_result(())?;
    Ok(gpu_joules_per_mac(workload))
}

/// GPU energy for one inference of the workload's network.
#[must_use]
pub fn gpu_network_energy(workload: &Workload, network: &Network) -> Joules {
    Joules::new(network.total_macs() as f64 * gpu_joules_per_mac(workload))
}

/// The winning design point and schedule for one layer of one network —
/// the per-shape winner table a per-layer architecture is built from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerWinner {
    /// The layer's best configuration.
    pub config: AcceleratorConfig,
    /// The layer's best hardwired engine.
    pub engine: Engine,
    /// The best software schedule on that design point.
    pub schedule: mapping::Schedule,
    /// Layer energy on the winning mapping.
    pub energy: Joules,
}

/// Per-network outcome of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkResult {
    /// The network evaluated.
    pub network: NetworkId,
    /// GPU baseline energy per inference.
    pub gpu_energy: Joules,
    /// Energy per inference on the global accelerator.
    pub global_energy: Joules,
    /// Energy per inference on this network's own best accelerator.
    pub per_network_energy: Joules,
    /// Energy per inference with the best accelerator per layer.
    pub per_layer_energy: Joules,
    /// This network's best configuration.
    pub best_config: AcceleratorConfig,
    /// This network's best hardwired engine.
    pub best_engine: Engine,
    /// Winning design point per layer (the persisted winner table).
    pub per_layer_winners: Vec<LayerWinner>,
}

impl NetworkResult {
    /// Energy-efficiency improvement over the GPU baseline for the given
    /// accelerator architecture.
    #[must_use]
    pub fn improvement(&self, arch: SystemArchitecture) -> f64 {
        let accel = match arch {
            SystemArchitecture::CommodityGpu => return 1.0,
            SystemArchitecture::GlobalAccelerator => self.global_energy,
            SystemArchitecture::PerNetworkAccelerator => self.per_network_energy,
            SystemArchitecture::PerLayerAccelerator => self.per_layer_energy,
        };
        self.gpu_energy / accel
    }
}

/// Aggregate counters from one sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepStats {
    /// Schedules fully evaluated through the cost model.
    pub schedules_evaluated: u64,
    /// Schedules skipped by the energy lower-bound prune.
    pub schedules_pruned: u64,
    /// Per-`(design point, shape)` schedule searches performed.
    pub shape_searches: u64,
    /// Layer evaluations served by the `(config, shape)` memo instead of
    /// recomputation (duplicate shapes across the suite).
    pub memo_hits: u64,
    /// Distinct layer shapes in the suite.
    pub unique_shapes: usize,
    /// Total layers across the suite before deduplication.
    pub total_layers: usize,
}

impl SweepStats {
    /// Fraction of schedule candidates the lower bound pruned away.
    #[must_use]
    pub fn prune_rate(&self) -> f64 {
        let total = self.schedules_evaluated + self.schedules_pruned;
        if total == 0 {
            0.0
        } else {
            self.schedules_pruned as f64 / total as f64
        }
    }

    /// Fraction of per-layer lookups served by the shape memo.
    #[must_use]
    pub fn memo_hit_rate(&self) -> f64 {
        let lookups = self.memo_hits + self.shape_searches;
        if lookups == 0 {
            0.0
        } else {
            self.memo_hits as f64 / lookups as f64
        }
    }
}

/// Complete outcome of the `7 168 configs × 6 engines` sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct DseOutcome {
    /// The globally optimal configuration (geomean over all layers of all
    /// nets).
    pub global_best: AcceleratorConfig,
    /// The globally optimal hardwired engine.
    pub global_engine: Engine,
    /// Per-network results, keyed in `NetworkId::all()` order.
    pub networks: Vec<NetworkResult>,
    /// Number of configurations evaluated.
    pub designs_evaluated: usize,
    /// Number of hardwired engines evaluated per configuration.
    pub engines_evaluated: usize,
    /// Search counters (pruning, memoization).
    pub stats: SweepStats,
}

impl DseOutcome {
    /// Mean energy-efficiency improvement over the GPU baseline across all
    /// networks (Fig. 17's headline numbers): the arithmetic mean of the
    /// per-network improvement factors, matching the figure's per-workload
    /// bars. (Design *selection* inside the sweep uses geometric means —
    /// this is only the reporting aggregate.)
    #[must_use]
    pub fn mean_improvement(&self, arch: SystemArchitecture) -> f64 {
        let sum: f64 = self.networks.iter().map(|n| n.improvement(arch)).sum();
        sum / self.networks.len() as f64
    }

    /// Result for one network.
    #[must_use]
    pub fn network(&self, id: NetworkId) -> Option<&NetworkResult> {
        self.networks.iter().find(|n| n.network == id)
    }
}

/// Runs the sweep over the full 7 168-configuration space with the default
/// same-node energy table.
#[must_use]
pub fn run_full_dse() -> DseOutcome {
    run_dse(&design_space(), &EnergyTable::default())
}

/// Per-thread sweep accumulator: scores paired with *flat design-point
/// indices* (`config_index · ENGINE_COUNT + engine_index`) so the
/// cross-chunk merge can express the serial tie-break (lowest index wins).
struct BestSoFar {
    global: (f64, usize),
    per_network: Vec<(f64, usize)>,
    /// Best per unique shape — the per-layer architecture reads through
    /// the memo's slots.
    per_shape: Vec<(f64, usize)>,
    counters: SearchCounters,
    /// Per-config scratch of ln-efficiencies, `shape × engine` — carried
    /// in the accumulator so the fold never allocates.
    scratch: Vec<f64>,
}

impl BestSoFar {
    fn new(networks: &[Network], shapes: usize) -> Self {
        Self {
            global: (f64::NEG_INFINITY, 0),
            per_network: vec![(f64::NEG_INFINITY, 0); networks.len()],
            per_shape: vec![(f64::NEG_INFINITY, 0); shapes],
            counters: SearchCounters::default(),
            scratch: vec![0.0; shapes * ENGINE_COUNT],
        }
    }
}

/// Keeps `a` unless `b` is *strictly* better. Chunks merge left to right in
/// index order, so this reproduces the serial loop's first-wins `>` test and
/// ties resolve to the lowest flat design-point index.
fn better(a: (f64, usize), b: (f64, usize)) -> (f64, usize) {
    if b.0 > a.0 {
        b
    } else {
        a
    }
}

/// Shared per-config fold body: the single implementation both the serial
/// oracle and every parallel chunk execute, so their arithmetic is
/// identical by construction.
fn sweep_config(
    best: &mut BestSoFar,
    idx: usize,
    config: AcceleratorConfig,
    memo: &LayerMemo,
    networks: &[Network],
    table: &EnergyTable,
) {
    let glb_pj = table.glb_access_pj(f64::from(config.total_buffer_kib()));
    let engines = Engine::all();

    // Phase 1: best-schedule search per (shape, engine); ln-efficiencies
    // land in the scratch table keyed on (shape, engine).
    for (si, layer) in memo.unique_layers().iter().enumerate() {
        let candidates = memo.candidates(si);
        let dram = mapping::dram_pj_by_order(config, table, layer);
        let macs = layer.macs() as f64;
        for (ei, &engine) in engines.iter().enumerate() {
            let choice = mapping::search(
                config,
                table,
                glb_pj,
                layer,
                engine,
                candidates,
                dram,
                true,
                &mut best.counters,
            );
            best.scratch[si * ENGINE_COUNT + ei] = (macs / (choice.picojoules * 1e-12)).ln();
        }
    }

    // Phase 2: score each engine as a full design point, in engine-index
    // order so the flat tie-break matches the serial nesting.
    for ei in 0..ENGINE_COUNT {
        let flat = idx * ENGINE_COUNT + ei;
        for si in 0..memo.unique_layers().len() {
            // ln is monotone, so comparing log-efficiencies picks the same
            // winner as comparing efficiencies.
            best.per_shape[si] = better(
                best.per_shape[si],
                (best.scratch[si * ENGINE_COUNT + ei], flat),
            );
        }
        let mut global_log_sum = 0.0;
        for (ni, net) in networks.iter().enumerate() {
            let mut net_log_sum = 0.0;
            for si in 0..memo.unique_layers().len() {
                let m = memo.multiplicity(ni, si);
                if m > 0.0 {
                    net_log_sum += m * best.scratch[si * ENGINE_COUNT + ei];
                }
            }
            let net_geo = net_log_sum / net.layers.len() as f64;
            best.per_network[ni] = better(best.per_network[ni], (net_geo, flat));
            global_log_sum += net_log_sum;
        }
        let global_geo = global_log_sum / memo.total_layers() as f64;
        best.global = better(best.global, (global_geo, flat));
    }
}

/// Runs the sweep over an arbitrary configuration space, in parallel.
///
/// The space is partitioned into contiguous chunks across the workspace
/// executor's threads ([`sudc_par::threads`]); each thread folds its chunk
/// with the same arithmetic as [`run_dse_serial`], searching schedules
/// through the per-`(config, shape)` memo ([`LayerMemo`]) with lower-bound
/// pruning, and chunk results merge in index order with a strictly-greater
/// test. The outcome is bit-identical to the serial sweep at every thread
/// count.
///
/// # Panics
///
/// Panics if `space` is empty.
#[must_use]
pub fn run_dse(space: &[AcceleratorConfig], table: &EnergyTable) -> DseOutcome {
    run_dse_threads(sudc_par::threads(), space, table)
}

/// [`run_dse`] with an explicit worker count (1 = serial execution order).
///
/// # Panics
///
/// Panics if `space` is empty.
#[must_use]
pub fn run_dse_threads(
    workers: usize,
    space: &[AcceleratorConfig],
    table: &EnergyTable,
) -> DseOutcome {
    assert!(!space.is_empty(), "design space must be non-empty");

    let networks: Vec<Network> = NetworkId::all().iter().map(|id| id.network()).collect();
    let memo = LayerMemo::for_networks(&networks);

    let best = sudc_par::par_reduce_threads(
        workers,
        space,
        || BestSoFar::new(&networks, memo.unique_layers().len()),
        |mut best, idx, &config| {
            sweep_config(&mut best, idx, config, &memo, &networks, table);
            best
        },
        |mut a, b| {
            a.global = better(a.global, b.global);
            for (av, bv) in a.per_network.iter_mut().zip(b.per_network) {
                *av = better(*av, bv);
            }
            for (av, bv) in a.per_shape.iter_mut().zip(b.per_shape) {
                *av = better(*av, bv);
            }
            a.counters.evaluated += b.counters.evaluated;
            a.counters.pruned += b.counters.pruned;
            a
        },
    );

    assemble_outcome(space, table, &networks, &memo, &best)
}

/// Reference serial sweep — a plain loop over the space, kept as the
/// oracle that [`run_dse`] must match bit for bit at any worker count.
///
/// # Panics
///
/// Panics if `space` is empty.
#[must_use]
pub fn run_dse_serial(space: &[AcceleratorConfig], table: &EnergyTable) -> DseOutcome {
    assert!(!space.is_empty(), "design space must be non-empty");

    let networks: Vec<Network> = NetworkId::all().iter().map(|id| id.network()).collect();
    let memo = LayerMemo::for_networks(&networks);

    let mut best = BestSoFar::new(&networks, memo.unique_layers().len());
    for (idx, &config) in space.iter().enumerate() {
        sweep_config(&mut best, idx, config, &memo, &networks, table);
    }

    assemble_outcome(space, table, &networks, &memo, &best)
}

/// Validated sweep: rejects an empty space, malformed configurations
/// (e.g. a zero psum buffer, whose spill factor would be infinite), and a
/// non-finite energy table before any arithmetic runs.
///
/// # Errors
/// Returns a [`SudcError`] collecting every violation.
pub fn try_run_dse(
    space: &[AcceleratorConfig],
    table: &EnergyTable,
) -> Result<DseOutcome, SudcError> {
    let mut d = Diagnostics::new("DSE");
    d.positive_count("space.len", space.len() as u64);
    d.finish()?;
    table.try_validate()?;
    let mut diags = Diagnostics::new("DSE");
    for (i, config) in space.iter().enumerate() {
        if let Err(e) = config.try_validate() {
            for v in e.violations() {
                diags.violation(
                    format!("space[{i}].{}", v.path),
                    v.value.clone(),
                    v.allowed.clone(),
                );
            }
        }
    }
    diags.finish()?;
    Ok(run_dse(space, table))
}

fn unflatten(flat: usize) -> (usize, Engine) {
    (flat / ENGINE_COUNT, Engine::all()[flat % ENGINE_COUNT])
}

/// Builds the [`DseOutcome`] from winning flat indices — shared by the
/// serial and parallel sweeps so their outputs are structurally identical.
/// Winning schedules are *recomputed* here (deterministically, via the
/// same pruned search) rather than carried through the fold, keeping the
/// accumulator small.
fn assemble_outcome(
    space: &[AcceleratorConfig],
    table: &EnergyTable,
    networks: &[Network],
    memo: &LayerMemo,
    best: &BestSoFar,
) -> DseOutcome {
    let workload_by_network: BTreeMap<NetworkId, Workload> = workloads::suite()
        .into_iter()
        .map(|w| (w.network, w))
        .collect();

    let (gc, global_engine) = unflatten(best.global.1);
    let global_best = space[gc];

    let winner_for = |flat: usize, layer| {
        let (ci, engine) = unflatten(flat);
        let config = space[ci];
        let glb_pj = table.glb_access_pj(f64::from(config.total_buffer_kib()));
        let mut c = SearchCounters::default();
        let choice = mapping::best_schedule(config, table, glb_pj, layer, engine, &mut c);
        LayerWinner {
            config,
            engine,
            schedule: choice.schedule,
            energy: choice.energy(),
        }
    };

    let results = networks
        .iter()
        .enumerate()
        .map(|(ni, net)| {
            let workload = &workload_by_network[&net.id];
            let (nc, best_engine) = unflatten(best.per_network[ni].1);
            let per_network_best = space[nc];
            let per_layer_winners: Vec<LayerWinner> = net
                .layers
                .iter()
                .enumerate()
                .map(|(li, layer)| winner_for(best.per_shape[memo.slot(ni, li)].1, layer))
                .collect();
            let per_layer_energy: Joules = per_layer_winners.iter().map(|w| w.energy).sum();
            NetworkResult {
                network: net.id,
                gpu_energy: gpu_network_energy(workload, net),
                global_energy: mapping::engine_network_energy(
                    global_best,
                    global_engine,
                    table,
                    net,
                ),
                per_network_energy: mapping::engine_network_energy(
                    per_network_best,
                    best_engine,
                    table,
                    net,
                ),
                per_layer_energy,
                best_config: per_network_best,
                best_engine,
                per_layer_winners,
            }
        })
        .collect();

    let shape_searches =
        space.len() as u64 * ENGINE_COUNT as u64 * memo.unique_layers().len() as u64;
    DseOutcome {
        global_best,
        global_engine,
        networks: results,
        designs_evaluated: space.len(),
        engines_evaluated: ENGINE_COUNT,
        stats: SweepStats {
            schedules_evaluated: best.counters.evaluated,
            schedules_pruned: best.counters.pruned,
            shape_searches,
            memo_hits: memo.dedup_hits(space.len(), ENGINE_COUNT),
            unique_shapes: memo.unique_layers().len(),
            total_layers: memo.total_layers(),
        },
    }
}

/// Deterministic fingerprint of a sweep's inputs (FNV-1a over the
/// configuration fields and the energy table's bit patterns) — the
/// incremental-DSE cache key.
#[must_use]
pub fn sweep_fingerprint(space: &[AcceleratorConfig], table: &EnergyTable) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for c in space {
        for field in [c.pe_x, c.pe_y, c.ifmap_kib, c.weight_kib, c.psum_kib] {
            mix(u64::from(field));
        }
    }
    for field in [
        table.mac_pj,
        table.rf_pj,
        table.noc_pj,
        table.glb_base_pj,
        table.glb_reference_kib,
        table.dram_pj,
        table.static_pe_pj,
        table.static_sram_pj_per_kib,
        table.system_static_pj,
        table.dram_words_per_cycle,
        table.dram_refetch_pj_factor,
    ] {
        mix(field.to_bits());
    }
    h
}

/// Incremental-DSE cache: repeated sweeps with identical inputs (router
/// re-pricing, tornado arms, warm bench reps) return the memoized outcome
/// instead of re-running the search. Valid across worker counts because
/// the sweep is bit-identical at any `--jobs`.
#[derive(Debug, Clone, Default)]
pub struct DseCache {
    entries: Vec<(u64, DseOutcome)>,
    lookups: u64,
    hits: u64,
}

impl DseCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs (or replays) a sweep.
    ///
    /// # Panics
    ///
    /// Panics if `space` is empty.
    pub fn run(&mut self, space: &[AcceleratorConfig], table: &EnergyTable) -> DseOutcome {
        let key = sweep_fingerprint(space, table);
        self.lookups += 1;
        if let Some((_, cached)) = self.entries.iter().find(|(k, _)| *k == key) {
            self.hits += 1;
            return cached.clone();
        }
        let outcome = run_dse(space, table);
        self.entries.push((key, outcome.clone()));
        outcome
    }

    /// Runs (or replays) the full default sweep.
    pub fn run_full(&mut self) -> DseOutcome {
        self.run(&design_space(), &EnergyTable::default())
    }

    /// Sweeps requested through this cache.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Sweeps served from the cache.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Fraction of sweeps served from the cache.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced space keeps unit tests fast; the full 7 168-config sweep
    /// runs in the integration tests and benches.
    fn small_space() -> Vec<AcceleratorConfig> {
        design_space().into_iter().step_by(37).collect()
    }

    #[test]
    fn architectures_are_ordered_by_specialization() {
        let out = run_dse(&small_space(), &EnergyTable::default());
        let global = out.mean_improvement(SystemArchitecture::GlobalAccelerator);
        let per_net = out.mean_improvement(SystemArchitecture::PerNetworkAccelerator);
        let per_layer = out.mean_improvement(SystemArchitecture::PerLayerAccelerator);
        assert!(global > 1.0, "global {global}");
        assert!(per_net >= global, "per-net {per_net} < global {global}");
        assert!(
            per_layer >= per_net,
            "per-layer {per_layer} < per-net {per_net}"
        );
    }

    #[test]
    fn gpu_baseline_improvement_is_identity() {
        let out = run_dse(&small_space(), &EnergyTable::default());
        assert!((out.mean_improvement(SystemArchitecture::CommodityGpu) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_layer_energy_never_exceeds_per_network() {
        let out = run_dse(&small_space(), &EnergyTable::default());
        for n in &out.networks {
            assert!(
                n.per_layer_energy <= n.per_network_energy,
                "{}: per-layer must dominate",
                n.network
            );
            // Note: per-network geomean selection does not guarantee lower
            // *total* energy than the global design on every network, so
            // only the per-layer bound is asserted against both.
            assert!(n.per_layer_energy <= n.global_energy, "{}", n.network);
        }
    }

    #[test]
    fn per_layer_winners_sum_to_per_layer_energy() {
        let out = run_dse(&small_space(), &EnergyTable::default());
        for n in &out.networks {
            let sum: Joules = n.per_layer_winners.iter().map(|w| w.energy).sum();
            assert_eq!(sum, n.per_layer_energy, "{}", n.network);
            assert!(!n.per_layer_winners.is_empty());
        }
    }

    #[test]
    fn every_network_has_a_result() {
        let out = run_dse(&small_space(), &EnergyTable::default());
        assert_eq!(out.networks.len(), 10);
        for id in NetworkId::all() {
            assert!(out.network(id).is_some(), "{id}");
        }
    }

    #[test]
    fn sweep_stats_are_populated() {
        let out = run_dse(&small_space(), &EnergyTable::default());
        assert!(out.stats.schedules_evaluated > 0);
        assert!(out.stats.schedules_pruned > 0, "pruning never fired");
        assert!(out.stats.memo_hit_rate() > 0.0);
        assert!(out.stats.prune_rate() > 0.0 && out.stats.prune_rate() < 1.0);
        assert_eq!(out.engines_evaluated, ENGINE_COUNT);
        assert_eq!(out.designs_evaluated, small_space().len());
    }

    #[test]
    fn gpu_joules_per_mac_reflects_utilization() {
        let traffic = workloads::by_name("Traffic Monitoring").unwrap();
        let flood = workloads::by_name("Flood Detection").unwrap();
        // The nearly idle GPU wastes far more energy per useful MAC.
        assert!(gpu_joules_per_mac(&traffic) > 3.0 * gpu_joules_per_mac(&flood));
    }

    #[test]
    fn hostile_workload_is_rejected_not_propagated() {
        let mut w = workloads::by_name("Flood Detection").unwrap();
        w.utilization = 0.0;
        let err = try_gpu_joules_per_mac(&w).unwrap_err();
        assert!(err.violations()[0].path.contains("utilization"));
        assert!(gpu_joules_per_mac(&w).is_infinite(), "unchecked path: inf");
    }

    #[test]
    #[should_panic(expected = "design space must be non-empty")]
    fn empty_space_panics() {
        let _ = run_dse(&[], &EnergyTable::default());
    }

    #[test]
    fn try_run_dse_rejects_empty_and_malformed_spaces() {
        assert!(try_run_dse(&[], &EnergyTable::default()).is_err());
        let bad = AcceleratorConfig {
            psum_kib: 0,
            ..AcceleratorConfig::reference()
        };
        let err = try_run_dse(&[bad], &EnergyTable::default()).unwrap_err();
        assert!(err.violations()[0].path.contains("psum_kib"));
        let ok = try_run_dse(&[AcceleratorConfig::reference()], &EnergyTable::default());
        assert!(ok.is_ok());
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let space = small_space();
        let table = EnergyTable::default();
        let reference = run_dse_serial(&space, &table);
        for workers in [1usize, 2, 3, 7] {
            let got = run_dse_threads(workers, &space, &table);
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn single_config_space_selects_that_config_everywhere() {
        let space = vec![AcceleratorConfig::reference()];
        let out = run_dse(&space, &EnergyTable::default());
        assert_eq!(out.global_best, space[0]);
        for n in &out.networks {
            assert_eq!(n.best_config, space[0]);
            for w in &n.per_layer_winners {
                assert_eq!(w.config, space[0]);
            }
        }
    }

    #[test]
    fn cache_replays_identical_sweeps() {
        let space = small_space();
        let table = EnergyTable::default();
        let mut cache = DseCache::new();
        let cold = cache.run(&space, &table);
        assert_eq!(cache.hits(), 0);
        let warm = cache.run(&space, &table);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cold, warm);
        // A different table is a different sweep.
        let other = cache.run(&space, &EnergyTable::eyeriss_45nm());
        assert_eq!(cache.hits(), 1);
        assert_ne!(other.global_best.to_string(), String::new());
        assert!((cache.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }
}
