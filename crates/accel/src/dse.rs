//! Design-space sweep, accelerator selection, and Fig. 17's
//! energy-efficiency improvements.
//!
//! Selection follows the paper exactly: "In order to determine the globally
//! optimal (energy minimizing) design, we use a geometric mean of each
//! design's energy efficiency on all neural network layers. Similarly, to
//! determine the per-network optimal design, we use geometric mean of each
//! design's energy efficiency on all layers of the network." Per-layer
//! designs simply take the best design for every individual layer.
//!
//! The GPU baseline is derived from the Table III measurements: the
//! effective energy per useful MAC on the RTX 3090 is
//! `P / (peak_FP32 · utilization / 2)` scaled by a framework-overhead
//! factor (NVML wall-clock power includes memory, host synchronization,
//! and idle-SM draw that the utilization counter does not capture).

use std::collections::BTreeMap;

use sudc_compute::hardware::rtx_3090;
use sudc_compute::networks::{Network, NetworkId};
use sudc_compute::workloads::{self, Workload};
use sudc_units::Joules;

use crate::dataflow::{layer_efficiency, layer_energy, network_energy};
use crate::design::{design_space, AcceleratorConfig};
use crate::energy::EnergyTable;
use crate::memo::LayerMemo;

/// Framework overhead on the GPU baseline: measured wall-power × time
/// divided by utilization-derived useful MACs understates per-MAC energy,
/// because cuDNN/TensorFlow inference also spends energy on memory traffic,
/// host sync, and idle SMs.
const GPU_FRAMEWORK_OVERHEAD: f64 = 6.0;

/// The compute system architectures compared in Figs. 17–18.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SystemArchitecture {
    /// Commodity GPU baseline (RTX 3090).
    CommodityGpu,
    /// One accelerator design shared by every workload (Fig. 18a).
    GlobalAccelerator,
    /// One accelerator design per network (Fig. 18b).
    PerNetworkAccelerator,
    /// One accelerator design per layer — extreme heterogeneity (Fig. 18c).
    PerLayerAccelerator,
}

impl core::fmt::Display for SystemArchitecture {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Self::CommodityGpu => "Commodity GPU",
            Self::GlobalAccelerator => "Global Accelerator",
            Self::PerNetworkAccelerator => "Per-Network Accelerator",
            Self::PerLayerAccelerator => "Per-Layer Accelerator",
        };
        f.write_str(s)
    }
}

/// Effective GPU energy per MAC for a workload, joules.
#[must_use]
pub fn gpu_joules_per_mac(workload: &Workload) -> f64 {
    let gpu = rtx_3090();
    let peak_flops = gpu.fp32.value() * 1e12;
    let useful_mac_rate = peak_flops * workload.utilization / 2.0;
    workload.gpu_power.value() / useful_mac_rate * GPU_FRAMEWORK_OVERHEAD
}

/// GPU energy for one inference of the workload's network.
#[must_use]
pub fn gpu_network_energy(workload: &Workload, network: &Network) -> Joules {
    Joules::new(network.total_macs() as f64 * gpu_joules_per_mac(workload))
}

/// Per-network outcome of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkResult {
    /// The network evaluated.
    pub network: NetworkId,
    /// GPU baseline energy per inference.
    pub gpu_energy: Joules,
    /// Energy per inference on the global accelerator.
    pub global_energy: Joules,
    /// Energy per inference on this network's own best accelerator.
    pub per_network_energy: Joules,
    /// Energy per inference with the best accelerator per layer.
    pub per_layer_energy: Joules,
    /// This network's best design.
    pub best_config: AcceleratorConfig,
}

impl NetworkResult {
    /// Energy-efficiency improvement over the GPU baseline for the given
    /// accelerator architecture.
    #[must_use]
    pub fn improvement(&self, arch: SystemArchitecture) -> f64 {
        let accel = match arch {
            SystemArchitecture::CommodityGpu => return 1.0,
            SystemArchitecture::GlobalAccelerator => self.global_energy,
            SystemArchitecture::PerNetworkAccelerator => self.per_network_energy,
            SystemArchitecture::PerLayerAccelerator => self.per_layer_energy,
        };
        self.gpu_energy / accel
    }
}

/// Complete outcome of the 7 168-design sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct DseOutcome {
    /// The globally optimal design (geomean over all layers of all nets).
    pub global_best: AcceleratorConfig,
    /// Per-network results, keyed in `NetworkId::all()` order.
    pub networks: Vec<NetworkResult>,
    /// Number of designs evaluated.
    pub designs_evaluated: usize,
}

impl DseOutcome {
    /// Geometric-mean energy-efficiency improvement over the GPU baseline
    /// across all networks (Fig. 17's headline numbers).
    #[must_use]
    pub fn mean_improvement(&self, arch: SystemArchitecture) -> f64 {
        let log_sum: f64 = self.networks.iter().map(|n| n.improvement(arch).ln()).sum();
        (log_sum / self.networks.len() as f64).exp()
    }

    /// Result for one network.
    #[must_use]
    pub fn network(&self, id: NetworkId) -> Option<&NetworkResult> {
        self.networks.iter().find(|n| n.network == id)
    }
}

/// Runs the sweep over the full 7 168-design space with the default
/// same-node energy table.
#[must_use]
pub fn run_full_dse() -> DseOutcome {
    run_dse(&design_space(), &EnergyTable::default())
}

/// Per-thread sweep accumulator: scores paired with *config indices* so the
/// cross-chunk merge can express the serial tie-break (lowest index wins).
struct BestSoFar {
    global: (f64, usize),
    per_network: Vec<(f64, usize)>,
    per_layer: Vec<Vec<(f64, usize)>>,
}

impl BestSoFar {
    fn new(networks: &[Network]) -> Self {
        Self {
            global: (f64::NEG_INFINITY, 0),
            per_network: vec![(f64::NEG_INFINITY, 0); networks.len()],
            per_layer: networks
                .iter()
                .map(|n| vec![(f64::NEG_INFINITY, 0); n.layers.len()])
                .collect(),
        }
    }
}

/// Keeps `a` unless `b` is *strictly* better. Chunks merge left to right in
/// index order, so this reproduces the serial loop's first-wins `>` test and
/// ties resolve to the lowest config index.
fn better(a: (f64, usize), b: (f64, usize)) -> (f64, usize) {
    if b.0 > a.0 {
        b
    } else {
        a
    }
}

/// Runs the sweep over an arbitrary design space, in parallel.
///
/// The space is partitioned into contiguous chunks across the workspace
/// executor's threads ([`sudc_par::threads`]); each thread folds its chunk
/// with the same arithmetic as [`run_dse_serial`], reading layer
/// efficiencies through a per-`(config, layer-shape)` memo ([`LayerMemo`]),
/// and chunk results merge in index order with a strictly-greater test.
/// The outcome is bit-identical to the serial sweep at every thread count.
///
/// # Panics
///
/// Panics if `space` is empty.
#[must_use]
pub fn run_dse(space: &[AcceleratorConfig], table: &EnergyTable) -> DseOutcome {
    run_dse_threads(sudc_par::threads(), space, table)
}

/// [`run_dse`] with an explicit worker count (1 = serial execution order).
///
/// # Panics
///
/// Panics if `space` is empty.
#[must_use]
pub fn run_dse_threads(
    workers: usize,
    space: &[AcceleratorConfig],
    table: &EnergyTable,
) -> DseOutcome {
    assert!(!space.is_empty(), "design space must be non-empty");

    let networks: Vec<Network> = NetworkId::all().iter().map(|id| id.network()).collect();
    let memo = LayerMemo::for_networks(&networks);

    let best = sudc_par::par_reduce_threads(
        workers,
        space,
        || BestSoFar::new(&networks),
        |mut best, idx, &config| {
            let effs = memo.efficiencies(config, table);
            let mut global_log_sum = 0.0;
            let mut global_layers = 0usize;
            for (ni, net) in networks.iter().enumerate() {
                let mut net_log_sum = 0.0;
                for li in 0..net.layers.len() {
                    let eff = effs[memo.slot(ni, li)];
                    net_log_sum += eff.ln();
                    best.per_layer[ni][li] = better(best.per_layer[ni][li], (eff, idx));
                }
                let net_geo = net_log_sum / net.layers.len() as f64;
                best.per_network[ni] = better(best.per_network[ni], (net_geo, idx));
                global_log_sum += net_log_sum;
                global_layers += net.layers.len();
            }
            let global_geo = global_log_sum / global_layers as f64;
            best.global = better(best.global, (global_geo, idx));
            best
        },
        |mut a, b| {
            a.global = better(a.global, b.global);
            for (av, bv) in a.per_network.iter_mut().zip(b.per_network) {
                *av = better(*av, bv);
            }
            for (al, bl) in a.per_layer.iter_mut().zip(b.per_layer) {
                for (av, bv) in al.iter_mut().zip(bl) {
                    *av = better(*av, bv);
                }
            }
            a
        },
    );

    assemble_outcome(
        space,
        table,
        &networks,
        space[best.global.1],
        &best.per_network,
        &best.per_layer,
    )
}

/// Reference serial sweep — the pre-parallelization implementation, kept as
/// the oracle that [`run_dse`] must match bit for bit.
///
/// # Panics
///
/// Panics if `space` is empty.
#[must_use]
pub fn run_dse_serial(space: &[AcceleratorConfig], table: &EnergyTable) -> DseOutcome {
    assert!(!space.is_empty(), "design space must be non-empty");

    let networks: Vec<Network> = NetworkId::all().iter().map(|id| id.network()).collect();

    // Sweep: track global geomean, per-network geomean, and per-layer best.
    let mut best_global: (f64, usize) = (f64::NEG_INFINITY, 0);
    let mut best_per_network: Vec<(f64, usize)> = vec![(f64::NEG_INFINITY, 0); networks.len()];
    let mut best_per_layer: Vec<Vec<(f64, usize)>> = networks
        .iter()
        .map(|n| vec![(f64::NEG_INFINITY, 0); n.layers.len()])
        .collect();

    for (idx, &config) in space.iter().enumerate() {
        let mut global_log_sum = 0.0;
        let mut global_layers = 0usize;
        for (ni, net) in networks.iter().enumerate() {
            let mut net_log_sum = 0.0;
            for (li, layer) in net.layers.iter().enumerate() {
                let eff = layer_efficiency(config, table, layer);
                let log_eff = eff.ln();
                net_log_sum += log_eff;
                if eff > best_per_layer[ni][li].0 {
                    best_per_layer[ni][li] = (eff, idx);
                }
            }
            let net_geo = net_log_sum / net.layers.len() as f64;
            if net_geo > best_per_network[ni].0 {
                best_per_network[ni] = (net_geo, idx);
            }
            global_log_sum += net_log_sum;
            global_layers += net.layers.len();
        }
        let global_geo = global_log_sum / global_layers as f64;
        if global_geo > best_global.0 {
            best_global = (global_geo, idx);
        }
    }

    assemble_outcome(
        space,
        table,
        &networks,
        space[best_global.1],
        &best_per_network,
        &best_per_layer,
    )
}

/// Builds the [`DseOutcome`] from winning config indices — shared by the
/// serial and parallel sweeps so their outputs are structurally identical.
fn assemble_outcome(
    space: &[AcceleratorConfig],
    table: &EnergyTable,
    networks: &[Network],
    global_best: AcceleratorConfig,
    best_per_network: &[(f64, usize)],
    best_per_layer: &[Vec<(f64, usize)>],
) -> DseOutcome {
    let workload_by_network: BTreeMap<NetworkId, Workload> = workloads::suite()
        .into_iter()
        .map(|w| (w.network, w))
        .collect();

    let results = networks
        .iter()
        .enumerate()
        .map(|(ni, net)| {
            let workload = &workload_by_network[&net.id];
            let per_network_best = space[best_per_network[ni].1];
            let per_layer_energy: Joules = net
                .layers
                .iter()
                .zip(&best_per_layer[ni])
                .map(|(layer, &(_, cfg))| layer_energy(space[cfg], table, layer))
                .sum();
            NetworkResult {
                network: net.id,
                gpu_energy: gpu_network_energy(workload, net),
                global_energy: network_energy(global_best, table, net),
                per_network_energy: network_energy(per_network_best, table, net),
                per_layer_energy,
                best_config: per_network_best,
            }
        })
        .collect();

    DseOutcome {
        global_best,
        networks: results,
        designs_evaluated: space.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced space keeps unit tests fast; the full 7 168-design sweep
    /// runs in the integration tests and benches.
    fn small_space() -> Vec<AcceleratorConfig> {
        design_space().into_iter().step_by(37).collect()
    }

    #[test]
    fn architectures_are_ordered_by_specialization() {
        let out = run_dse(&small_space(), &EnergyTable::default());
        let global = out.mean_improvement(SystemArchitecture::GlobalAccelerator);
        let per_net = out.mean_improvement(SystemArchitecture::PerNetworkAccelerator);
        let per_layer = out.mean_improvement(SystemArchitecture::PerLayerAccelerator);
        assert!(global > 1.0, "global {global}");
        assert!(per_net >= global, "per-net {per_net} < global {global}");
        assert!(
            per_layer >= per_net,
            "per-layer {per_layer} < per-net {per_net}"
        );
    }

    #[test]
    fn gpu_baseline_improvement_is_identity() {
        let out = run_dse(&small_space(), &EnergyTable::default());
        assert!((out.mean_improvement(SystemArchitecture::CommodityGpu) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_layer_energy_never_exceeds_per_network() {
        let out = run_dse(&small_space(), &EnergyTable::default());
        for n in &out.networks {
            assert!(
                n.per_layer_energy <= n.per_network_energy,
                "{}: per-layer must dominate",
                n.network
            );
            // Note: per-network geomean selection does not guarantee lower
            // *total* energy than the global design on every network, so
            // only the per-layer bound is asserted against both.
            assert!(n.per_layer_energy <= n.global_energy, "{}", n.network);
        }
    }

    #[test]
    fn every_network_has_a_result() {
        let out = run_dse(&small_space(), &EnergyTable::default());
        assert_eq!(out.networks.len(), 10);
        for id in NetworkId::all() {
            assert!(out.network(id).is_some(), "{id}");
        }
    }

    #[test]
    fn gpu_joules_per_mac_reflects_utilization() {
        let traffic = workloads::by_name("Traffic Monitoring").unwrap();
        let flood = workloads::by_name("Flood Detection").unwrap();
        // The nearly idle GPU wastes far more energy per useful MAC.
        assert!(gpu_joules_per_mac(&traffic) > 3.0 * gpu_joules_per_mac(&flood));
    }

    #[test]
    #[should_panic(expected = "design space must be non-empty")]
    fn empty_space_panics() {
        let _ = run_dse(&[], &EnergyTable::default());
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let space = small_space();
        let table = EnergyTable::default();
        let reference = run_dse_serial(&space, &table);
        for workers in [1usize, 2, 3, 7] {
            let got = run_dse_threads(workers, &space, &table);
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn single_config_space_selects_that_config_everywhere() {
        let space = vec![AcceleratorConfig::reference()];
        let out = run_dse(&space, &EnergyTable::default());
        assert_eq!(out.global_best, space[0]);
        for n in &out.networks {
            assert_eq!(n.best_config, space[0]);
        }
    }
}
