//! Layer-shape memoization for the design-space sweep.
//!
//! The DSE's cost model depends only on a layer's *shape*, and CNN suites
//! repeat shapes heavily (every 3×3/stride-1 block of a ResNet stage is
//! identical, U-Net mirrors its encoder, …). Deduplicating shapes up front
//! means each `(config, engine)` design point evaluates its schedule
//! search once per distinct shape — the `(config, shape)`-keyed cache the
//! sweep reads through — which cuts the hot loop by the suite's
//! duplication factor (~2.3× for the Table III networks) in serial *and*
//! parallel runs. The memo also precomputes, per shape, everything the
//! mapping search re-reads on every config: the deduplicated schedule
//! candidate list and the per-network multiplicity matrix that turns
//! per-shape log-efficiencies into geomean scores.

use std::collections::HashMap;

use sudc_compute::networks::{Layer, Network};

use crate::dataflow::layer_efficiency;
use crate::design::AcceleratorConfig;
use crate::energy::EnergyTable;
use crate::mapping::{schedule_candidates, Schedule};

/// Shape-deduplicated view of a network suite.
#[derive(Debug, Clone)]
pub struct LayerMemo {
    /// Distinct layer shapes, in first-appearance order.
    unique: Vec<Layer>,
    /// `slot[network][layer]` → index into `unique`.
    slot: Vec<Vec<usize>>,
    /// `mult[network][shape]` → how many layers of the network have the
    /// shape (as f64: it weights log-efficiency sums).
    mult: Vec<Vec<f64>>,
    /// Deduplicated schedule candidates per shape.
    candidates: Vec<Vec<Schedule>>,
    /// Total (non-deduplicated) layer count across the suite.
    total_layers: usize,
}

impl LayerMemo {
    /// Builds the memo for a suite of networks.
    #[must_use]
    pub fn for_networks(networks: &[Network]) -> Self {
        let mut unique: Vec<Layer> = Vec::new();
        let mut index_of: HashMap<Layer, usize> = HashMap::new();
        let mut total_layers = 0;
        let slot: Vec<Vec<usize>> = networks
            .iter()
            .map(|net| {
                net.layers
                    .iter()
                    .map(|layer| {
                        total_layers += 1;
                        *index_of.entry(layer.clone()).or_insert_with(|| {
                            unique.push(layer.clone());
                            unique.len() - 1
                        })
                    })
                    .collect()
            })
            .collect();
        let mult = slot
            .iter()
            .map(|slots| {
                let mut row = vec![0.0; unique.len()];
                for &si in slots {
                    row[si] += 1.0;
                }
                row
            })
            .collect();
        let candidates = unique.iter().map(schedule_candidates).collect();
        Self {
            unique,
            slot,
            mult,
            candidates,
            total_layers,
        }
    }

    /// The distinct layer shapes.
    #[must_use]
    pub fn unique_layers(&self) -> &[Layer] {
        &self.unique
    }

    /// Total layer count before deduplication.
    #[must_use]
    pub fn total_layers(&self) -> usize {
        self.total_layers
    }

    /// Index into [`Self::unique_layers`] for layer `li` of network `ni`.
    #[must_use]
    pub fn slot(&self, ni: usize, li: usize) -> usize {
        self.slot[ni][li]
    }

    /// How many layers of network `ni` share shape `si`.
    #[must_use]
    pub fn multiplicity(&self, ni: usize, si: usize) -> f64 {
        self.mult[ni][si]
    }

    /// Deduplicated schedule candidates for shape `si` (precomputed once
    /// per sweep instead of once per `(config, shape, engine)` search).
    #[must_use]
    pub fn candidates(&self, si: usize) -> &[Schedule] {
        &self.candidates[si]
    }

    /// Layer evaluations one full `config × engine` sweep of `configs`
    /// design points serves from the shape dedup instead of recomputing —
    /// the memo-hit count [`crate::dse::SweepStats`] reports.
    #[must_use]
    pub fn dedup_hits(&self, configs: usize, engines: usize) -> u64 {
        (self.total_layers - self.unique.len()) as u64 * configs as u64 * engines as u64
    }

    /// Evaluates `layer_efficiency` once per distinct shape for one
    /// configuration; read results back through [`Self::slot`].
    #[must_use]
    pub fn efficiencies(&self, config: AcceleratorConfig, table: &EnergyTable) -> Vec<f64> {
        self.unique
            .iter()
            .map(|layer| layer_efficiency(config, table, layer))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sudc_compute::networks::NetworkId;

    fn suite() -> Vec<Network> {
        NetworkId::all().iter().map(|id| id.network()).collect()
    }

    #[test]
    fn suite_has_substantial_shape_duplication() {
        let memo = LayerMemo::for_networks(&suite());
        assert!(
            memo.unique_layers().len() * 3 < memo.total_layers() * 2,
            "expected >= 1.5x duplication, got {} unique of {}",
            memo.unique_layers().len(),
            memo.total_layers()
        );
        assert!(memo.dedup_hits(1, 1) > 0);
    }

    #[test]
    fn slots_point_at_identical_shapes() {
        let networks = suite();
        let memo = LayerMemo::for_networks(&networks);
        for (ni, net) in networks.iter().enumerate() {
            for (li, layer) in net.layers.iter().enumerate() {
                assert_eq!(&memo.unique_layers()[memo.slot(ni, li)], layer);
            }
        }
    }

    #[test]
    fn multiplicities_sum_to_network_sizes() {
        let networks = suite();
        let memo = LayerMemo::for_networks(&networks);
        for (ni, net) in networks.iter().enumerate() {
            let total: f64 = (0..memo.unique_layers().len())
                .map(|si| memo.multiplicity(ni, si))
                .sum();
            assert!((total - net.layers.len() as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn candidates_match_direct_enumeration() {
        let memo = LayerMemo::for_networks(&suite());
        for (si, layer) in memo.unique_layers().iter().enumerate() {
            assert_eq!(memo.candidates(si), schedule_candidates(layer));
        }
    }

    #[test]
    fn memoized_efficiencies_match_direct_evaluation() {
        let networks = suite();
        let memo = LayerMemo::for_networks(&networks);
        let table = EnergyTable::default();
        let config = AcceleratorConfig::reference();
        let effs = memo.efficiencies(config, &table);
        for (ni, net) in networks.iter().enumerate().take(3) {
            for (li, layer) in net.layers.iter().enumerate() {
                let direct = layer_efficiency(config, &table, layer);
                let memoized = effs[memo.slot(ni, li)];
                assert!(
                    (direct - memoized).abs() == 0.0,
                    "net {ni} layer {li}: {direct} vs {memoized}"
                );
            }
        }
    }
}
