//! Layer-shape memoization for the design-space sweep.
//!
//! The DSE's cost model depends only on a layer's *shape*, and CNN suites
//! repeat shapes heavily (every 3×3/stride-1 block of a ResNet stage is
//! identical, U-Net mirrors its encoder, …). Deduplicating shapes up front
//! means each of the 7 168 configurations evaluates each distinct shape
//! exactly once — the per-`(config, layer-shape)` cache the sweep reads
//! through — which cuts the hot loop by the suite's duplication factor
//! (~2–3× for the Table III networks) in serial *and* parallel runs.

use std::collections::HashMap;

use sudc_compute::networks::{Layer, Network};

use crate::dataflow::layer_efficiency;
use crate::design::AcceleratorConfig;
use crate::energy::EnergyTable;

/// Shape-deduplicated view of a network suite.
#[derive(Debug, Clone)]
pub struct LayerMemo {
    /// Distinct layer shapes, in first-appearance order.
    unique: Vec<Layer>,
    /// `slot[network][layer]` → index into `unique`.
    slot: Vec<Vec<usize>>,
    /// Total (non-deduplicated) layer count across the suite.
    total_layers: usize,
}

impl LayerMemo {
    /// Builds the memo for a suite of networks.
    #[must_use]
    pub fn for_networks(networks: &[Network]) -> Self {
        let mut unique: Vec<Layer> = Vec::new();
        let mut index_of: HashMap<Layer, usize> = HashMap::new();
        let mut total_layers = 0;
        let slot = networks
            .iter()
            .map(|net| {
                net.layers
                    .iter()
                    .map(|layer| {
                        total_layers += 1;
                        *index_of.entry(layer.clone()).or_insert_with(|| {
                            unique.push(layer.clone());
                            unique.len() - 1
                        })
                    })
                    .collect()
            })
            .collect();
        Self {
            unique,
            slot,
            total_layers,
        }
    }

    /// The distinct layer shapes.
    #[must_use]
    pub fn unique_layers(&self) -> &[Layer] {
        &self.unique
    }

    /// Total layer count before deduplication.
    #[must_use]
    pub fn total_layers(&self) -> usize {
        self.total_layers
    }

    /// Index into [`Self::unique_layers`] for layer `li` of network `ni`.
    #[must_use]
    pub fn slot(&self, ni: usize, li: usize) -> usize {
        self.slot[ni][li]
    }

    /// Evaluates `layer_efficiency` once per distinct shape for one
    /// configuration; read results back through [`Self::slot`].
    #[must_use]
    pub fn efficiencies(&self, config: AcceleratorConfig, table: &EnergyTable) -> Vec<f64> {
        self.unique
            .iter()
            .map(|layer| layer_efficiency(config, table, layer))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sudc_compute::networks::NetworkId;

    fn suite() -> Vec<Network> {
        NetworkId::all().iter().map(|id| id.network()).collect()
    }

    #[test]
    fn suite_has_substantial_shape_duplication() {
        let memo = LayerMemo::for_networks(&suite());
        assert!(
            memo.unique_layers().len() * 3 < memo.total_layers() * 2,
            "expected >= 1.5x duplication, got {} unique of {}",
            memo.unique_layers().len(),
            memo.total_layers()
        );
    }

    #[test]
    fn slots_point_at_identical_shapes() {
        let networks = suite();
        let memo = LayerMemo::for_networks(&networks);
        for (ni, net) in networks.iter().enumerate() {
            for (li, layer) in net.layers.iter().enumerate() {
                assert_eq!(&memo.unique_layers()[memo.slot(ni, li)], layer);
            }
        }
    }

    #[test]
    fn memoized_efficiencies_match_direct_evaluation() {
        let networks = suite();
        let memo = LayerMemo::for_networks(&networks);
        let table = EnergyTable::default();
        let config = AcceleratorConfig::reference();
        let effs = memo.efficiencies(config, &table);
        for (ni, net) in networks.iter().enumerate().take(3) {
            for (li, layer) in net.layers.iter().enumerate() {
                let direct = layer_efficiency(config, &table, layer);
                let memoized = effs[memo.slot(ni, li)];
                assert!(
                    (direct - memoized).abs() == 0.0,
                    "net {ni} layer {li}: {direct} vs {memoized}"
                );
            }
        }
    }
}
