//! The per-layer mapping space — loop orders × output-row tilings ×
//! spatial projections × dataflows — and the pruned best-schedule search.
//!
//! Timeloop's advantage over a fixed-dataflow analytical model is mapping
//! choice. We split that choice along the hardware/software boundary:
//!
//! - an [`Engine`] (dataflow × spatial projection) is **silicon** — wired
//!   multicast trees and PE-local control. It is part of the design point:
//!   the DSE sweeps `config × engine`, and a global accelerator must commit
//!   to one engine for every layer it will ever run. This is what opens the
//!   Fig. 17 heterogeneity gap: no single engine is good at both
//!   spatially-rich convolutions and reuse-free dense layers.
//! - a [`Schedule`] (DRAM loop order × output-row tiling) is **software** —
//!   a compiler decision taken per layer on *any* engine. Every
//!   architecture, global included, gets the best schedule per layer, so
//!   the gap measures hardware specialization, not compiler quality.
//!
//! The schedule search is exhaustive over a tiny, shape-deduplicated
//! candidate list with an energy lower-bound prune: a schedule whose
//! MAC + leakage + DRAM + tiling-traffic floor already loses to the
//! incumbent is skipped without a full evaluation. Pruning is exact: the
//! floor is a sum of a subset of the exact evaluation's terms (guarded by
//! a relative margin for summation-order rounding), and ties keep the
//! earliest candidate in canonical order, so the pruned search returns
//! bit-identical winners to the unpruned reference — asserted by proptest.

use sudc_compute::networks::Layer;
use sudc_units::Joules;

use crate::dataflow::{count_accesses_mapped, picojoules_of, Dataflow};
use crate::design::AcceleratorConfig;
use crate::energy::EnergyTable;

/// How the layer's parallel dimensions project onto the physical PE grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpatialMap {
    /// Output channels (filters) along x, output rows along y — the
    /// canonical Eyeriss projection the pre-mapping model hardwired.
    FilterRow,
    /// The transpose: output rows along x, filters along y. Rescues
    /// layers whose channel/row extents match the grid the other way.
    RowFilter,
    /// Output channels across the whole flattened array, no row
    /// parallelism — the matrix-engine projection that keeps reuse-free
    /// dense and pointwise layers fully utilized.
    FilterGrid,
}

impl SpatialMap {
    /// All spatial projections, in canonical order.
    #[must_use]
    pub fn all() -> [Self; 3] {
        [Self::FilterRow, Self::RowFilter, Self::FilterGrid]
    }

    /// Effective parallelism `(m_par, row_par)` of a layer on a grid.
    /// Dimension quantization matters: a 28-wide axis running 64 filters
    /// needs `ceil(64/28) = 3` passes, so effective parallelism is
    /// `64/3 ≈ 21.3`.
    #[must_use]
    pub fn parallelism(self, config: AcceleratorConfig, out_c: f64, out_h: f64) -> (f64, f64) {
        let quantized = |dim: f64, pe: f64| dim / (dim / pe).ceil();
        match self {
            Self::FilterRow => (
                quantized(out_c, f64::from(config.pe_x)),
                quantized(out_h, f64::from(config.pe_y)),
            ),
            Self::RowFilter => (
                quantized(out_c, f64::from(config.pe_y)),
                quantized(out_h, f64::from(config.pe_x)),
            ),
            Self::FilterGrid => (quantized(out_c, f64::from(config.pes())), 1.0),
        }
    }
}

impl core::fmt::Display for SpatialMap {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Self::FilterRow => "filter-row",
            Self::RowFilter => "row-filter",
            Self::FilterGrid => "filter-grid",
        })
    }
}

/// Which tensor the outermost DRAM loop holds resident: the other tensor
/// is the one that streams (and re-streams, once per pass of the resident
/// tensor's tiles, when it does not fit its buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopOrder {
    /// Weights tile in the outer loop; the ifmap re-streams once per
    /// weight tile beyond the first.
    WeightsOuter,
    /// Ifmap tiles in the outer loop; weights re-stream once per ifmap
    /// tile beyond the first.
    IfmapOuter,
}

impl LoopOrder {
    /// Both loop orders, in canonical order.
    #[must_use]
    pub fn all() -> [Self; 2] {
        [Self::WeightsOuter, Self::IfmapOuter]
    }
}

/// A hardwired mapping engine: dataflow × spatial projection. Part of the
/// design point (swept by the DSE alongside [`AcceleratorConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Engine {
    /// Temporal reuse pattern wired into the PE control.
    pub dataflow: Dataflow,
    /// Physical projection wired into the multicast network.
    pub spatial: SpatialMap,
}

/// Number of engines in the hardware mapping space.
pub const ENGINE_COUNT: usize = 6;

impl Engine {
    /// All engines, in canonical (dataflow-major) order. The sweep's
    /// tie-break resolves to the lowest index in this order.
    #[must_use]
    pub fn all() -> [Self; ENGINE_COUNT] {
        let mut out = [Self {
            dataflow: Dataflow::RowStationary,
            spatial: SpatialMap::FilterRow,
        }; ENGINE_COUNT];
        let mut i = 0;
        for dataflow in Dataflow::all() {
            for spatial in SpatialMap::all() {
                out[i] = Self { dataflow, spatial };
                i += 1;
            }
        }
        out
    }

    /// Index of this engine in [`Engine::all`].
    #[must_use]
    pub fn index(self) -> usize {
        let df = match self.dataflow {
            Dataflow::RowStationary => 0,
            Dataflow::WeightStationary => 1,
        };
        let sp = match self.spatial {
            SpatialMap::FilterRow => 0,
            SpatialMap::RowFilter => 1,
            SpatialMap::FilterGrid => 2,
        };
        df * SpatialMap::all().len() + sp
    }

    /// The engine the pre-mapping model hardwired for a dataflow.
    #[must_use]
    pub fn canonical(dataflow: Dataflow) -> Self {
        Self {
            dataflow,
            spatial: SpatialMap::FilterRow,
        }
    }
}

impl core::fmt::Display for Engine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let df = match self.dataflow {
            Dataflow::RowStationary => "RS",
            Dataflow::WeightStationary => "WS",
        };
        write!(f, "{df}/{}", self.spatial)
    }
}

/// Output-row tiling factors the scheduler may pick.
pub const OW_TILE_OPTIONS: [u32; 4] = [1, 2, 4, 8];

/// A software schedule: per-layer compiler decisions available on every
/// engine — the DRAM loop order and the output-row tiling factor (which
/// shrinks the psum working set at the price of extra weight re-fetch
/// under RS / ifmap halo re-reads under WS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Schedule {
    /// Outermost DRAM loop.
    pub order: LoopOrder,
    /// Output-row tiling factor (1 = untiled, the canonical schedule).
    pub ow_tile: u32,
}

impl Schedule {
    /// All schedules in canonical (order-major, tile-ascending) order.
    #[must_use]
    pub fn all() -> [Self; 8] {
        let mut out = [Self {
            order: LoopOrder::WeightsOuter,
            ow_tile: 1,
        }; 8];
        let mut i = 0;
        for order in LoopOrder::all() {
            for ow_tile in OW_TILE_OPTIONS {
                out[i] = Self { order, ow_tile };
                i += 1;
            }
        }
        out
    }

    /// The untiled weights-outer schedule.
    #[must_use]
    pub fn canonical() -> Self {
        Self {
            order: LoopOrder::WeightsOuter,
            ow_tile: 1,
        }
    }
}

impl core::fmt::Display for Schedule {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let order = match self.order {
            LoopOrder::WeightsOuter => "w-outer",
            LoopOrder::IfmapOuter => "i-outer",
        };
        write!(f, "{order}/t{}", self.ow_tile)
    }
}

/// One point of the full per-layer mapping space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mapping {
    /// The hardwired engine.
    pub engine: Engine,
    /// The software schedule.
    pub schedule: Schedule,
}

impl core::fmt::Display for Mapping {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} {}", self.engine, self.schedule)
    }
}

/// Schedule candidates for a layer shape, deduplicated: tiling factors
/// clamp at `out_w`, so factors beyond the first clamped one re-evaluate
/// an identical mapping and are dropped (a dense layer keeps only the two
/// loop orders).
#[must_use]
pub fn schedule_candidates(layer: &Layer) -> Vec<Schedule> {
    let out_w = f64::from(layer.output_w()).max(1.0);
    let mut out = Vec::with_capacity(8);
    for schedule in Schedule::all() {
        let t_eff = f64::from(schedule.ow_tile).min(out_w);
        let duplicate = out.last().is_some_and(|prev: &Schedule| {
            prev.order == schedule.order && f64::from(prev.ow_tile).min(out_w) >= t_eff
        });
        if !duplicate {
            out.push(schedule);
        }
    }
    out
}

/// Counters from one pruned schedule search (accumulated across the whole
/// sweep into [`crate::dse::SweepStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchCounters {
    /// Schedules fully evaluated through the cost model.
    pub evaluated: u64,
    /// Schedules skipped by the energy lower bound.
    pub pruned: u64,
}

/// Relative margin on the pruning comparison: the floor is a sum of a
/// subset of the exact evaluation's terms, so it is mathematically a lower
/// bound, but f64 summation order can perturb it by ~1e-16 relative. A
/// 1e-9 guard keeps the prune sound (never discards a strict winner) at a
/// negligible cost in prune rate.
const PRUNE_MARGIN: f64 = 1.0 + 1e-9;

/// Result of a best-schedule search on one `(config, engine, layer)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleChoice {
    /// The winning schedule (earliest in canonical order on ties).
    pub schedule: Schedule,
    /// Its layer energy, picojoules.
    pub picojoules: f64,
}

impl ScheduleChoice {
    /// The winning energy in joules.
    #[must_use]
    pub fn energy(&self) -> Joules {
        Joules::new(self.picojoules * 1e-12)
    }
}

/// Exhaustive-with-pruning search for the cheapest schedule of `layer` on
/// `config` under `engine`.
///
/// `glb_pj` is the config's buffer access energy
/// ([`EnergyTable::glb_access_pj`]), hoisted out by the sweep; pass
/// `table.glb_access_pj(config.total_buffer_kib() as f64)` when calling
/// standalone.
#[must_use]
pub fn best_schedule(
    config: AcceleratorConfig,
    table: &EnergyTable,
    glb_pj: f64,
    layer: &Layer,
    engine: Engine,
    counters: &mut SearchCounters,
) -> ScheduleChoice {
    let candidates = schedule_candidates(layer);
    let dram = dram_pj_by_order(config, table, layer);
    search(
        config,
        table,
        glb_pj,
        layer,
        engine,
        &candidates,
        dram,
        true,
        counters,
    )
}

/// The unpruned reference search — evaluates every candidate. Must return
/// bit-identical results to [`best_schedule`]; the accel proptests hold
/// them together.
#[must_use]
pub fn best_schedule_unpruned(
    config: AcceleratorConfig,
    table: &EnergyTable,
    glb_pj: f64,
    layer: &Layer,
    engine: Engine,
) -> ScheduleChoice {
    let mut counters = SearchCounters::default();
    let candidates = schedule_candidates(layer);
    let dram = dram_pj_by_order(config, table, layer);
    search(
        config,
        table,
        glb_pj,
        layer,
        engine,
        &candidates,
        dram,
        false,
        &mut counters,
    )
}

/// DRAM energy per loop order (engine-independent: the loop order alone
/// decides which tensor re-streams) — hoisted out of the engine loop by
/// the sweep, recomputed here for standalone calls.
#[must_use]
pub fn dram_pj_by_order(config: AcceleratorConfig, table: &EnergyTable, layer: &Layer) -> [f64; 2] {
    let engine = Engine::canonical(Dataflow::RowStationary);
    let words = |order| {
        let c = count_accesses_mapped(
            config,
            layer,
            Mapping {
                engine,
                schedule: Schedule { order, ow_tile: 1 },
            },
        );
        table.dram_effective_words(c.dram_words, c.dram_refetch_words)
    };
    [
        words(LoopOrder::WeightsOuter) * table.dram_pj,
        words(LoopOrder::IfmapOuter) * table.dram_pj,
    ]
}

/// The sweep's hot entry: candidates and per-order DRAM energy hoisted to
/// per-shape precomputation.
#[allow(clippy::too_many_arguments)]
pub(crate) fn search(
    config: AcceleratorConfig,
    table: &EnergyTable,
    glb_pj: f64,
    layer: &Layer,
    engine: Engine,
    candidates: &[Schedule],
    dram_by_order: [f64; 2],
    prune: bool,
    counters: &mut SearchCounters,
) -> ScheduleChoice {
    let macs = layer.macs() as f64;
    let out_w = f64::from(layer.output_w()).max(1.0);
    let out_c = f64::from(layer.out_channels).max(1.0);
    let out_h = f64::from(layer.output_h()).max(1.0);
    let k = f64::from(layer.kernel).max(1.0);
    let (m_par, row_par) = engine.spatial.parallelism(config, out_c, out_h);
    let cycles = macs / (m_par * row_par);

    // Schedule-independent part of the floor: arithmetic and RF traffic
    // are identical for every schedule of this engine. Leakage is added
    // per loop order below (the roofline stall depends on DRAM words,
    // which the order decides).
    let base_floor = macs * table.mac_pj + 3.0 * macs * table.rf_pj;
    let leak_pj_per_cycle = table.leakage_pj_per_cycle(
        f64::from(config.pes()),
        f64::from(config.total_buffer_kib()),
    );
    // Wall-clock cycles per order: compute- or memory-bound, whichever
    // binds. DRAM traffic is tile-independent, so this is exact.
    let wall_cycles_by_order = dram_by_order.map(|dram_pj_total| {
        cycles.max(dram_pj_total / table.dram_pj / table.dram_words_per_cycle)
    });

    let mut best: Option<ScheduleChoice> = None;
    for &schedule in candidates {
        if prune {
            if let Some(incumbent) = best {
                // Tiling-dependent traffic floor: the term that *grows*
                // with the tile factor (weight re-fetch under RS, ifmap
                // halo under WS), at buffer access energy.
                let t_eff = f64::from(schedule.ow_tile).min(out_w);
                let tile_term = match engine.dataflow {
                    Dataflow::RowStationary => macs / (row_par * (out_w / t_eff)),
                    Dataflow::WeightStationary => {
                        (macs / m_par) * (1.0 + (t_eff - 1.0) * (k - 1.0) / out_w)
                    }
                };
                let oi = match schedule.order {
                    LoopOrder::WeightsOuter => 0,
                    LoopOrder::IfmapOuter => 1,
                };
                let floor = base_floor
                    + dram_by_order[oi]
                    + wall_cycles_by_order[oi] * leak_pj_per_cycle
                    + tile_term * glb_pj;
                if floor >= incumbent.picojoules * PRUNE_MARGIN {
                    counters.pruned += 1;
                    continue;
                }
            }
        }
        let counts = count_accesses_mapped(config, layer, Mapping { engine, schedule });
        let picojoules = picojoules_of(config, table, glb_pj, &counts);
        counters.evaluated += 1;
        // Strictly-less keeps the earliest candidate on ties, matching the
        // unpruned reference.
        if best.is_none_or(|b| picojoules < b.picojoules) {
            best = Some(ScheduleChoice {
                schedule,
                picojoules,
            });
        }
    }
    best.expect("schedule_candidates is never empty")
}

/// Energy of `layer` on `config` hardwired to `engine`, with the best
/// software schedule — the quantity the DSE's geomean scoring consumes.
#[must_use]
pub fn engine_layer_energy(
    config: AcceleratorConfig,
    engine: Engine,
    table: &EnergyTable,
    layer: &Layer,
) -> Joules {
    let glb_pj = table.glb_access_pj(f64::from(config.total_buffer_kib()));
    let mut c = SearchCounters::default();
    best_schedule(config, table, glb_pj, layer, engine, &mut c).energy()
}

/// Energy of one inference of `network` on `config` hardwired to `engine`,
/// best schedule per layer — how the DSE costs a committed design point on
/// a whole workload.
#[must_use]
pub fn engine_network_energy(
    config: AcceleratorConfig,
    engine: Engine,
    table: &EnergyTable,
    network: &sudc_compute::networks::Network,
) -> Joules {
    let glb_pj = table.glb_access_pj(f64::from(config.total_buffer_kib()));
    let mut c = SearchCounters::default();
    network
        .layers
        .iter()
        .map(|layer| best_schedule(config, table, glb_pj, layer, engine, &mut c).energy())
        .sum()
}

/// Energy of `layer` with full mapping freedom (best engine × schedule) —
/// what a per-layer design gets to exploit.
#[must_use]
pub fn best_mapping_energy(
    config: AcceleratorConfig,
    table: &EnergyTable,
    layer: &Layer,
) -> (Joules, Mapping) {
    let glb_pj = table.glb_access_pj(f64::from(config.total_buffer_kib()));
    let mut c = SearchCounters::default();
    let mut best: Option<(f64, Mapping)> = None;
    for engine in Engine::all() {
        let choice = best_schedule(config, table, glb_pj, layer, engine, &mut c);
        if best.is_none_or(|(pj, _)| choice.picojoules < pj) {
            best = Some((
                choice.picojoules,
                Mapping {
                    engine,
                    schedule: choice.schedule,
                },
            ));
        }
    }
    let (pj, mapping) = best.expect("Engine::all is never empty");
    (Joules::new(pj * 1e-12), mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sudc_compute::networks::NetworkId;

    #[test]
    fn engine_indices_match_canonical_order() {
        for (i, engine) in Engine::all().into_iter().enumerate() {
            assert_eq!(engine.index(), i);
        }
    }

    #[test]
    fn dense_layers_collapse_the_tile_ladder() {
        let dense = Layer::dense(2048, 1000);
        let cands = schedule_candidates(&dense);
        assert_eq!(cands.len(), 2, "one per loop order");
        assert!(cands.iter().all(|s| s.ow_tile == 1));
        let conv = Layer::conv(56, 56, 64, 128, 3, 1);
        assert_eq!(schedule_candidates(&conv).len(), 8);
        let narrow = Layer::conv(4, 4, 256, 256, 3, 1);
        // out_w = 4: t = 8 clamps to 4 and is dropped.
        assert_eq!(schedule_candidates(&narrow).len(), 6);
    }

    #[test]
    fn filter_grid_keeps_dense_layers_utilized() {
        let config = AcceleratorConfig::reference();
        let dense = Layer::dense(2048, 1000);
        let out_c = f64::from(dense.out_channels);
        let (fr_m, fr_r) = SpatialMap::FilterRow.parallelism(config, out_c, 1.0);
        let (fg_m, fg_r) = SpatialMap::FilterGrid.parallelism(config, out_c, 1.0);
        let pes = f64::from(config.pes());
        assert!(fr_m * fr_r / pes < 0.1, "row projection starves dense");
        assert!(fg_m * fg_r / pes > 0.9, "grid projection fills the array");
    }

    #[test]
    fn pruned_search_matches_unpruned_on_the_suite() {
        let table = EnergyTable::default();
        for config in [
            AcceleratorConfig::reference(),
            AcceleratorConfig {
                pe_x: 28,
                pe_y: 4,
                ifmap_kib: 8,
                weight_kib: 8,
                psum_kib: 8,
            },
        ] {
            let glb_pj = table.glb_access_pj(f64::from(config.total_buffer_kib()));
            for layer in &NetworkId::ResNet50.network().layers {
                for engine in Engine::all() {
                    let mut c = SearchCounters::default();
                    let pruned = best_schedule(config, &table, glb_pj, layer, engine, &mut c);
                    let full = best_schedule_unpruned(config, &table, glb_pj, layer, engine);
                    assert_eq!(pruned, full, "{engine} on {layer:?}");
                }
            }
        }
    }

    #[test]
    fn pruning_actually_fires() {
        let table = EnergyTable::default();
        let config = AcceleratorConfig::reference();
        let glb_pj = table.glb_access_pj(f64::from(config.total_buffer_kib()));
        let mut c = SearchCounters::default();
        for layer in &NetworkId::ResNet50.network().layers {
            for engine in Engine::all() {
                let _ = best_schedule(config, &table, glb_pj, layer, engine, &mut c);
            }
        }
        assert!(c.pruned > 0, "no schedules pruned across ResNet-50");
        assert!(c.evaluated > 0);
    }

    #[test]
    fn best_mapping_is_at_least_as_good_as_any_engine() {
        let table = EnergyTable::default();
        let config = AcceleratorConfig::reference();
        let layer = Layer::conv(28, 28, 256, 256, 3, 1);
        let (best, _) = best_mapping_energy(config, &table, &layer);
        for engine in Engine::all() {
            assert!(best <= engine_layer_energy(config, engine, &table, &layer));
        }
    }
}
