//! Accelerator configurations and the paper's 7 168-point design space.
//!
//! "Dimensions in the design space exploration are the length of the PE grid
//! in x and y dimensions and the size of input feature, weight, and
//! accumulation buffers. A total of 7168 designs were evaluated." We sweep
//! 7 × 4 PE-grid shapes and 8 × 8 × 4 buffer sizings: 7·4·8·8·4 = 7 168.

use sudc_errors::{Diagnostics, SudcError};

/// PE-grid x-dimension options.
pub const PE_X_OPTIONS: [u32; 7] = [4, 8, 12, 16, 20, 24, 28];
/// PE-grid y-dimension options.
pub const PE_Y_OPTIONS: [u32; 4] = [8, 16, 32, 64];
/// Input-feature buffer sizes, KiB.
pub const IFMAP_KIB_OPTIONS: [u32; 8] = [8, 16, 24, 32, 48, 64, 96, 128];
/// Weight buffer sizes, KiB.
pub const WEIGHT_KIB_OPTIONS: [u32; 8] = [8, 16, 24, 32, 48, 64, 96, 128];
/// Accumulation (psum) buffer sizes, KiB.
pub const PSUM_KIB_OPTIONS: [u32; 4] = [8, 16, 32, 64];

/// One Eyeriss-like row-stationary accelerator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AcceleratorConfig {
    /// PE-grid width.
    pub pe_x: u32,
    /// PE-grid height.
    pub pe_y: u32,
    /// Input-feature global buffer, KiB.
    pub ifmap_kib: u32,
    /// Weight global buffer, KiB.
    pub weight_kib: u32,
    /// Accumulation global buffer, KiB.
    pub psum_kib: u32,
}

impl AcceleratorConfig {
    /// Total PE count.
    #[must_use]
    pub fn pes(self) -> u32 {
        self.pe_x * self.pe_y
    }

    /// Total on-chip buffering, KiB.
    #[must_use]
    pub fn total_buffer_kib(self) -> u32 {
        self.ifmap_kib + self.weight_kib + self.psum_kib
    }

    /// Validates the configuration for use in the cost model.
    ///
    /// Every dimension must be a positive count: a zero PE axis makes the
    /// cycle count infinite, and a zero psum buffer makes the accumulation
    /// spill factor infinite — both would silently poison every geomean
    /// they touch instead of failing loudly.
    ///
    /// # Errors
    /// Returns a [`SudcError`] listing every zero dimension.
    pub fn try_validate(self) -> Result<Self, SudcError> {
        let mut d = Diagnostics::new("AcceleratorConfig");
        d.positive_count("pe_x", u64::from(self.pe_x));
        d.positive_count("pe_y", u64::from(self.pe_y));
        d.positive_count("ifmap_kib", u64::from(self.ifmap_kib));
        d.positive_count("weight_kib", u64::from(self.weight_kib));
        d.positive_count("psum_kib", u64::from(self.psum_kib));
        d.into_result(self)
    }

    /// A mid-sized reference design (16×16 PEs, 64/64/32 KiB buffers).
    #[must_use]
    pub fn reference() -> Self {
        Self {
            pe_x: 16,
            pe_y: 16,
            ifmap_kib: 64,
            weight_kib: 64,
            psum_kib: 32,
        }
    }
}

impl core::fmt::Display for AcceleratorConfig {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}x{} PEs, {}+{}+{} KiB",
            self.pe_x, self.pe_y, self.ifmap_kib, self.weight_kib, self.psum_kib
        )
    }
}

/// Enumerates the full 7 168-design space in a deterministic order.
#[must_use]
pub fn design_space() -> Vec<AcceleratorConfig> {
    let mut space = Vec::with_capacity(PE_X_OPTIONS.len() * PE_Y_OPTIONS.len() * 8 * 8 * 4);
    for &pe_x in &PE_X_OPTIONS {
        for &pe_y in &PE_Y_OPTIONS {
            for &ifmap_kib in &IFMAP_KIB_OPTIONS {
                for &weight_kib in &WEIGHT_KIB_OPTIONS {
                    for &psum_kib in &PSUM_KIB_OPTIONS {
                        space.push(AcceleratorConfig {
                            pe_x,
                            pe_y,
                            ifmap_kib,
                            weight_kib,
                            psum_kib,
                        });
                    }
                }
            }
        }
    }
    space
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn space_has_exactly_7168_designs() {
        assert_eq!(design_space().len(), 7168);
    }

    #[test]
    fn designs_are_unique() {
        let set: HashSet<_> = design_space().into_iter().collect();
        assert_eq!(set.len(), 7168);
    }

    #[test]
    fn reference_design_is_in_the_space() {
        assert!(design_space().contains(&AcceleratorConfig::reference()));
    }

    #[test]
    fn pes_and_buffers_accumulate() {
        let c = AcceleratorConfig::reference();
        assert_eq!(c.pes(), 256);
        assert_eq!(c.total_buffer_kib(), 160);
    }

    #[test]
    fn validation_rejects_zero_dimensions() {
        assert!(AcceleratorConfig::reference().try_validate().is_ok());
        for config in design_space() {
            assert!(config.try_validate().is_ok());
        }
        let bad = AcceleratorConfig {
            pe_x: 0,
            psum_kib: 0,
            ..AcceleratorConfig::reference()
        };
        let err = bad.try_validate().unwrap_err();
        assert_eq!(err.violations().len(), 2);
        assert!(err.to_string().contains("pe_x"));
        assert!(err.to_string().contains("psum_kib"));
    }

    #[test]
    fn display_is_informative() {
        let s = AcceleratorConfig::reference().to_string();
        assert!(s.contains("16x16"));
        assert!(s.contains("KiB"));
    }
}
