//! Per-layer accelerator pipeline timing and buffering (paper Fig. 18).
//!
//! The extreme-heterogeneity design chains one accelerator per layer with
//! double-buffered I/O feature buffers, "enabling asynchronous pipelined
//! execution". Energy is the sum of stage energies (see
//! [`crate::dataflow`]); this module adds the *timing* view — stage
//! latencies, the bottleneck stage that sets throughput, and the SRAM the
//! double buffers require.

use sudc_compute::networks::Network;
use sudc_units::Seconds;

use crate::dataflow::count_accesses;
use crate::design::AcceleratorConfig;

/// Clock frequency of the accelerator fabric, Hz.
pub const CLOCK_HZ: f64 = 1.0e9;

/// Bytes per activation word in the inter-stage buffers.
const WORD_BYTES: u64 = 2;

/// Timing analysis of one per-layer pipeline.
#[derive(Debug, Clone)]
pub struct PipelineTiming {
    /// Per-stage latency for one input, seconds.
    pub stage_latencies: Vec<Seconds>,
    /// Index of the bottleneck (slowest) stage.
    pub bottleneck_stage: usize,
    /// Steady-state throughput, inferences per second.
    pub throughput: f64,
    /// Fill latency of one inference through the whole pipeline.
    pub fill_latency: Seconds,
    /// Total double-buffer SRAM between stages, bytes.
    pub interstage_buffer_bytes: u64,
}

/// Analyzes a per-layer pipeline where stage `i` runs `configs[i]`.
///
/// # Panics
///
/// Panics if `configs` does not supply one configuration per layer, or the
/// network is empty.
#[must_use]
pub fn analyze_pipeline(network: &Network, configs: &[AcceleratorConfig]) -> PipelineTiming {
    assert!(!network.layers.is_empty(), "network has no layers");
    assert_eq!(
        configs.len(),
        network.layers.len(),
        "need one accelerator config per layer"
    );
    let stage_latencies: Vec<Seconds> = network
        .layers
        .iter()
        .zip(configs)
        .map(|(layer, &cfg)| {
            let cycles = count_accesses(cfg, layer).cycles;
            Seconds::new(cycles / CLOCK_HZ)
        })
        .collect();
    let (bottleneck_stage, bottleneck) = stage_latencies
        .iter()
        .copied()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite latencies"))
        .expect("non-empty pipeline");
    let fill_latency: Seconds = stage_latencies.iter().copied().sum();
    // Double buffers hold each non-final layer's output twice.
    let interstage_buffer_bytes: u64 = network.layers[..network.layers.len() - 1]
        .iter()
        .map(|l| 2 * WORD_BYTES * l.output_activations())
        .sum();
    PipelineTiming {
        stage_latencies,
        bottleneck_stage,
        throughput: 1.0 / bottleneck.value(),
        fill_latency,
        interstage_buffer_bytes,
    }
}

/// Analyzes a homogeneous pipeline (the Fig. 18a global design): every
/// stage uses the same configuration.
#[must_use]
pub fn analyze_homogeneous(network: &Network, config: AcceleratorConfig) -> PipelineTiming {
    let configs = vec![config; network.layers.len()];
    analyze_pipeline(network, &configs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sudc_compute::networks::NetworkId;

    fn net() -> Network {
        NetworkId::ResNet50.network()
    }

    #[test]
    fn pipeline_throughput_is_set_by_the_bottleneck() {
        let t = analyze_homogeneous(&net(), AcceleratorConfig::reference());
        let slowest = t.stage_latencies[t.bottleneck_stage];
        assert!((t.throughput - 1.0 / slowest.value()).abs() / t.throughput < 1e-12);
        for s in &t.stage_latencies {
            assert!(*s <= slowest);
        }
    }

    #[test]
    fn fill_latency_is_sum_of_stages() {
        let t = analyze_homogeneous(&net(), AcceleratorConfig::reference());
        let sum: Seconds = t.stage_latencies.iter().copied().sum();
        assert!((t.fill_latency - sum).abs() < Seconds::new(1e-15));
        assert!(t.fill_latency.value() > 0.0);
    }

    #[test]
    fn per_layer_configs_beat_homogeneous_throughput() {
        // Give the bottleneck layer a bigger array than the global config.
        let network = net();
        let global = AcceleratorConfig::reference();
        let base = analyze_homogeneous(&network, global);
        let mut configs = vec![global; network.layers.len()];
        configs[base.bottleneck_stage] = AcceleratorConfig {
            pe_x: 28,
            pe_y: 32,
            ..global
        };
        let tuned = analyze_pipeline(&network, &configs);
        assert!(tuned.throughput >= base.throughput);
    }

    #[test]
    fn buffer_requirement_is_megabytes_for_resnet() {
        let t = analyze_homogeneous(&net(), AcceleratorConfig::reference());
        let mb = t.interstage_buffer_bytes as f64 / 1e6;
        assert!(mb > 1.0 && mb < 200.0, "buffers {mb} MB");
    }

    #[test]
    fn throughput_is_realtime_for_eo_rates() {
        // Six tiles/min per satellite is far below pipeline throughput.
        let t = analyze_homogeneous(&net(), AcceleratorConfig::reference());
        assert!(t.throughput > 1.0, "inferences/s {}", t.throughput);
    }

    #[test]
    #[should_panic(expected = "one accelerator config per layer")]
    fn mismatched_configs_panic() {
        let _ = analyze_pipeline(&net(), &[AcceleratorConfig::reference()]);
    }
}
