//! Property tests for the per-layer mapping search.
//!
//! Two invariants hold the search to the pre-search model and to its own
//! unpruned reference:
//!
//! 1. **Search dominates the fixed dataflows.** The canonical RS and WS
//!    mappings are exact points of the searched space, so the best searched
//!    mapping can never cost more than either — on any layer of any
//!    Table III network, at any design point.
//! 2. **Pruning is lossless.** The lower-bound prune must return results
//!    bit-identical to the exhaustive search: same winning schedule, same
//!    energy bits.
//!
//! Case counts honour `SUDC_PROPTEST_CASES` (see `.github/workflows/ci.yml`).

use proptest::prelude::*;
use sudc_accel::dataflow::{count_accesses_with, picojoules_of, Dataflow};
use sudc_accel::design::design_space;
use sudc_accel::energy::EnergyTable;
use sudc_accel::mapping::{best_schedule, best_schedule_unpruned, SearchCounters};
use sudc_accel::Engine;
use sudc_compute::networks::NetworkId;

fn cases() -> u32 {
    std::env::var("SUDC_PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Invariant 1: on every layer of every Table III network, the searched
    /// best mapping is at least as cheap as both canonical dataflows (the
    /// two points the pre-search model hardwired).
    #[test]
    fn searched_best_dominates_both_fixed_dataflows(
        config_idx in 0usize..7168, net_idx in 0usize..10,
    ) {
        let table = EnergyTable::default();
        let space = design_space();
        let config = space[config_idx % space.len()];
        let network = NetworkId::all()[net_idx % NetworkId::all().len()].network();
        let glb_pj = table.glb_access_pj(f64::from(config.total_buffer_kib()));
        for layer in &network.layers {
            let (best, _) = sudc_accel::mapping::best_mapping_energy(config, &table, layer);
            for dataflow in Dataflow::all() {
                let c = count_accesses_with(config, layer, dataflow);
                let fixed = picojoules_of(config, &table, glb_pj, &c) * 1e-12;
                prop_assert!(
                    best.value() <= fixed,
                    "search lost to fixed {dataflow:?} on {config}: {} > {fixed}",
                    best.value()
                );
            }
        }
    }

    /// Invariant 2: the pruned search and the unpruned reference return
    /// bit-identical winners (schedule and energy) for every engine on
    /// every layer of a sampled network.
    #[test]
    fn pruned_search_matches_unpruned_reference(
        config_idx in 0usize..7168, net_idx in 0usize..10,
    ) {
        let table = EnergyTable::default();
        let space = design_space();
        let config = space[config_idx % space.len()];
        let network = NetworkId::all()[net_idx % NetworkId::all().len()].network();
        let glb_pj = table.glb_access_pj(f64::from(config.total_buffer_kib()));
        for layer in &network.layers {
            for engine in Engine::all() {
                let mut counters = SearchCounters::default();
                let pruned =
                    best_schedule(config, &table, glb_pj, layer, engine, &mut counters);
                let reference =
                    best_schedule_unpruned(config, &table, glb_pj, layer, engine);
                prop_assert_eq!(pruned.schedule, reference.schedule);
                prop_assert_eq!(pruned.picojoules.to_bits(), reference.picojoules.to_bits());
            }
        }
    }
}
