#[test]
#[ignore]
fn calibration_print() {
    let out = sudc_accel::dse::run_full_dse();
    use sudc_accel::dse::SystemArchitecture as SA;
    println!("global best: {}", out.global_best);
    println!(
        "global   improvement: {:.1}x",
        out.mean_improvement(SA::GlobalAccelerator)
    );
    println!(
        "per-net  improvement: {:.1}x",
        out.mean_improvement(SA::PerNetworkAccelerator)
    );
    println!(
        "per-layer improvement: {:.1}x",
        out.mean_improvement(SA::PerLayerAccelerator)
    );
    for n in &out.networks {
        println!("  {:20} gpu {:.3} J  glob {:.4} J  pernet {:.4} J  perlayer {:.4} J  (impr {:.0}/{:.0}/{:.0})",
            n.network.to_string(), n.gpu_energy.value(), n.global_energy.value(),
            n.per_network_energy.value(), n.per_layer_energy.value(),
            n.improvement(SA::GlobalAccelerator), n.improvement(SA::PerNetworkAccelerator),
            n.improvement(SA::PerLayerAccelerator));
    }
}
