#[test]
#[ignore]
fn calibration_breakdown() {
    use sudc_accel::dataflow::count_accesses_mapped;
    use sudc_accel::mapping::{best_schedule, SearchCounters};
    use sudc_accel::{AcceleratorConfig, Mapping};

    let table = sudc_accel::energy::EnergyTable::default();
    let out = sudc_accel::dse::run_full_dse();

    let terms = |config: AcceleratorConfig, mapping: Mapping, layer: &_| -> [f64; 6] {
        let glb_pj = table.glb_access_pj(f64::from(config.total_buffer_kib()));
        let c = count_accesses_mapped(config, layer, mapping);
        let wire = f64::from(config.pe_x.max(config.pe_y)) / 16.0;
        let dram_eff = table.dram_effective_words(c.dram_words, c.dram_refetch_words);
        let wall = c.cycles.max(dram_eff / table.dram_words_per_cycle);
        [
            c.macs * table.mac_pj,
            c.rf_accesses * table.rf_pj,
            c.noc_transfers * table.noc_pj * wire,
            c.glb_accesses * glb_pj,
            dram_eff * table.dram_pj,
            wall * table.leakage_pj_per_cycle(
                f64::from(config.pes()),
                f64::from(config.total_buffer_kib()),
            ),
        ]
    };

    let names = ["mac", "rf", "noc", "glb", "dram", "leak"];
    for n in &out.networks {
        let mut glob = [0.0; 6];
        let mut per_layer = [0.0; 6];
        let net = n.network.network();
        for (layer, w) in net.layers.iter().zip(&n.per_layer_winners) {
            let gcfg = out.global_best;
            let glb_pj = table.glb_access_pj(f64::from(gcfg.total_buffer_kib()));
            let mut cnt = SearchCounters::default();
            let gch = best_schedule(gcfg, &table, glb_pj, layer, out.global_engine, &mut cnt);
            let gmap = Mapping {
                engine: out.global_engine,
                schedule: gch.schedule,
            };
            for (a, t) in glob.iter_mut().zip(terms(gcfg, gmap, layer)) {
                *a += t;
            }
            let bmap = Mapping {
                engine: w.engine,
                schedule: w.schedule,
            };
            for (a, t) in per_layer.iter_mut().zip(terms(w.config, bmap, layer)) {
                *a += t;
            }
        }
        let gt: f64 = glob.iter().sum();
        let pt: f64 = per_layer.iter().sum();
        println!("== {:20} ratio {:.3}", n.network.to_string(), gt / pt);
        for i in 0..6 {
            println!(
                "  {:6} glob {:10.4} mJ {:5.1}%   best {:10.4} mJ {:5.1}%",
                names[i],
                glob[i] * 1e-9,
                100.0 * glob[i] / gt,
                per_layer[i] * 1e-9,
                100.0 * per_layer[i] / pt
            );
        }
    }
}

#[test]
#[ignore]
fn calibration_print() {
    let out = sudc_accel::dse::run_full_dse();
    use sudc_accel::dse::SystemArchitecture as SA;
    println!("global best: {} [{}]", out.global_best, out.global_engine);
    let mut engine_counts = std::collections::BTreeMap::new();
    for n in &out.networks {
        for w in &n.per_layer_winners {
            *engine_counts.entry(w.engine.to_string()).or_insert(0u32) += 1;
        }
    }
    println!("per-layer engine winners: {engine_counts:?}");
    println!(
        "global   improvement: {:.1}x",
        out.mean_improvement(SA::GlobalAccelerator)
    );
    println!(
        "per-net  improvement: {:.1}x",
        out.mean_improvement(SA::PerNetworkAccelerator)
    );
    println!(
        "per-layer improvement: {:.1}x",
        out.mean_improvement(SA::PerLayerAccelerator)
    );
    for n in &out.networks {
        println!("  {:20} gpu {:.3} J  glob {:.4} J  pernet {:.4} J  perlayer {:.4} J  (impr {:.0}/{:.0}/{:.0})",
            n.network.to_string(), n.gpu_energy.value(), n.global_energy.value(),
            n.per_network_energy.value(), n.per_layer_energy.value(),
            n.improvement(SA::GlobalAccelerator), n.improvement(SA::PerNetworkAccelerator),
            n.improvement(SA::PerLayerAccelerator));
    }
}
