//! The SµDC design builder and sizing pipeline.

use sudc_comms::cdh::CdhDesign;
use sudc_comms::compression::Compression;
use sudc_comms::requirements::saturation_rate;
use sudc_comms::requirements::DEFAULT_BITS_PER_PIXEL;
use sudc_compute::hardware::{rtx_3090, HardwareSpec};
use sudc_compute::workloads;
use sudc_errors::{Diagnostics, SudcError};
use sudc_orbital::drag::{DragProfile, DvBudget};
use sudc_orbital::launch::LaunchPricing;
use sudc_orbital::rocket::Engine;
use sudc_orbital::CircularOrbit;
use sudc_power::PowerDesign;
use sudc_reliability::RedundancyScheme;
use sudc_sscm::subsystems::SubsystemCers;
use sudc_sscm::SscmInputs;
use sudc_thermal::ThermalDesign;
use sudc_units::{GigabitsPerSecond, Kilograms, SquareMeters, Usd, Watts, Years};

use crate::tco::{TcoReport, OPS_COST_PER_YEAR};

/// Fixed bus housekeeping power (ADCS, TT&C, flight avionics), W.
const BUS_HOUSEKEEPING_W: f64 = 120.0;

/// Server-payload packaged specific power, W/kg (paper: > 35 W/kg).
const PAYLOAD_SPECIFIC_POWER_W_PER_KG: f64 = 35.0;

/// Compute-hardware packaging/integration cost factor over chip list price.
const PAYLOAD_PACKAGING_FACTOR: f64 = 1.8;

/// Mass of a powered-off cold spare relative to an active server unit:
/// spares are bare boards sharing the chassis and cold plates of the active
/// payload (the paper: "adding additional, redundant chips to a system has
/// negligible impact on both TCO and satellite mass").
const SPARE_MASS_FACTOR: f64 = 0.1;

/// Structure mass fraction of dry mass.
const STRUCTURE_FRACTION: f64 = 0.18;

/// ADCS mass fraction of dry mass.
const ADCS_FRACTION: f64 = 0.05;

/// Propulsion dry-hardware mass fraction of dry mass.
const PROPULSION_FRACTION: f64 = 0.04;

/// Fixed TT&C and harness mass, kg.
const TTC_FIXED_MASS_KG: f64 = 12.0;

/// Geometric-mean energy efficiency of the Table III application suite —
/// the representative workload mix used by [`IslSizing::SaturateTypical`].
#[must_use]
pub fn typical_efficiency() -> sudc_units::KilopixelsPerJoule {
    let suite = workloads::suite();
    let log_mean =
        suite.iter().map(|w| w.efficiency.value().ln()).sum::<f64>() / suite.len() as f64;
    sudc_units::KilopixelsPerJoule::new(log_mean.exp())
}

/// Errors from building or sizing a SµDC design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignError {
    /// A parameter was negative, NaN, or otherwise unusable.
    InvalidParameter {
        /// The offending parameter.
        name: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
    /// The selected hardware is missing data needed for sizing.
    IncompleteHardware {
        /// Hardware name.
        hardware: &'static str,
        /// What is missing (price or TDP).
        missing: &'static str,
    },
}

impl core::fmt::Display for DesignError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::InvalidParameter { name, reason } => {
                write!(f, "invalid design parameter {name}: {reason}")
            }
            Self::IncompleteHardware { hardware, missing } => {
                write!(f, "hardware {hardware} has no {missing} data")
            }
        }
    }
}

impl std::error::Error for DesignError {}

impl From<DesignError> for SudcError {
    fn from(e: DesignError) -> Self {
        match e {
            DesignError::InvalidParameter { name, reason } => {
                SudcError::single("SuDcDesign", name, reason, "a usable design parameter")
            }
            DesignError::IncompleteHardware { hardware, missing } => SudcError::single(
                "SuDcDesign",
                format!("hardware.{missing}"),
                hardware,
                format!("hardware with {missing} data"),
            ),
        }
    }
}

/// How the ISL is provisioned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IslSizing {
    /// Explicit capacity.
    Fixed(GigabitsPerSecond),
    /// Size to saturate the payload on the most-lightweight (highest
    /// kpixel/J) application — the paper's conservative Fig. 7/8 policy.
    SaturateWorstCase,
    /// Size to saturate the payload on a representative application mix
    /// (geometric-mean efficiency of the Table III suite) — the paper's
    /// "in reality, ISL requirements ... will be much lower" observation.
    SaturateTypical,
}

/// A validated SµDC design specification.
///
/// Construct with [`SuDcDesign::builder`]; obtain costs with
/// [`SuDcDesign::tco`] and physical sizing with [`SuDcDesign::size`].
#[derive(Debug, Clone)]
pub struct SuDcDesign {
    /// Compute power available to applications (equivalent power for
    /// redundant configurations).
    pub compute_power: Watts,
    /// Processing hardware flown.
    pub hardware: HardwareSpec,
    /// Energy-efficiency factor relative to the RTX 3090 baseline
    /// (accelerator payloads deliver baseline work at `power / factor`).
    pub efficiency_factor: f64,
    /// Hardware-price factor applied on top of the catalog price
    /// (accelerator NRE recovery, Fig. 16-style price scaling).
    pub hardware_price_factor: f64,
    /// ISL provisioning policy.
    pub isl: IslSizing,
    /// Compression applied to ISL traffic.
    pub compression: Compression,
    /// FSO power-efficiency scalar over today (≥ 1).
    pub fso_efficiency_scalar: f64,
    /// Mission lifetime.
    pub lifetime: Years,
    /// Operating orbit.
    pub orbit: CircularOrbit,
    /// Payload redundancy scheme.
    pub redundancy: RedundancyScheme,
    /// Cold-spare servers carried (powered off).
    pub spares: u32,
    /// Pointing requirement, arcsec.
    pub pointing_arcsec: f64,
    /// Launch pricing.
    pub launch: LaunchPricing,
}

impl SuDcDesign {
    /// Starts a builder with the paper's defaults: RTX 3090 payload, five
    /// year lifetime, 550 km LEO, worst-case ISL sizing, no compression,
    /// no redundancy.
    #[must_use]
    pub fn builder() -> SuDcDesignBuilder {
        SuDcDesignBuilder::default()
    }

    /// Physically sizes the design (payload, thermal, power, masses, fuel).
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::IncompleteHardware`] if the hardware lacks a
    /// TDP or price.
    pub fn size(&self) -> Result<SizedSuDc, DesignError> {
        let tdp = self.hardware.tdp.ok_or(DesignError::IncompleteHardware {
            hardware: self.hardware.name,
            missing: "TDP",
        })?;
        let unit_price = self.hardware.price.ok_or(DesignError::IncompleteHardware {
            hardware: self.hardware.name,
            missing: "price",
        })?;

        // Physical payload power: redundancy overhead divided by the
        // architecture's energy-efficiency factor.
        let physical_power =
            self.redundancy.physical_power(self.compute_power) / self.efficiency_factor;

        // ISL: the link must carry the pixels the *equivalent* compute
        // consumes (efficiency changes power, not pixel demand).
        let raw_isl = match self.isl {
            IslSizing::Fixed(rate) => rate,
            IslSizing::SaturateWorstCase => {
                let lightest = workloads::most_lightweight();
                saturation_rate(
                    self.redundancy.physical_power(self.compute_power),
                    lightest.efficiency,
                    DEFAULT_BITS_PER_PIXEL,
                )
            }
            IslSizing::SaturateTypical => saturation_rate(
                self.redundancy.physical_power(self.compute_power),
                typical_efficiency(),
                DEFAULT_BITS_PER_PIXEL,
            ),
        };
        let isl_rate = self.compression.compressed_rate(raw_isl);
        let cdh = CdhDesign::size_with_fso_efficiency(isl_rate, self.fso_efficiency_scalar);

        // Thermal: all dissipated electrical power becomes heat.
        let heat_load = physical_power + cdh.power() + Watts::new(BUS_HOUSEKEEPING_W);
        let thermal = ThermalDesign::size_default(heat_load);

        // Power: EOL load adds the heat pump.
        let eol_load = heat_load + thermal.pump_power;
        let power = PowerDesign::size_default(eol_load, self.orbit, self.lifetime);

        // Payload mass & price (spares add mass and price, not power).
        let active_units = (physical_power.value() / tdp.value()).ceil() as u32;
        let payload_units = active_units + self.spares;
        let unit_mass = tdp.value() / PAYLOAD_SPECIFIC_POWER_W_PER_KG;
        let payload_mass = Kilograms::new(
            physical_power.value() / PAYLOAD_SPECIFIC_POWER_W_PER_KG
                + f64::from(self.spares) * unit_mass * SPARE_MASS_FACTOR,
        );
        let payload_price = unit_price
            * f64::from(payload_units)
            * PAYLOAD_PACKAGING_FACTOR
            * self.hardware_price_factor;

        // Dry-mass fixed point: structure/ADCS/propulsion scale with dry
        // mass, everything else is known.
        let fixed_mass = payload_mass.value()
            + thermal.mass().value()
            + power.mass().value()
            + cdh.mass().value()
            + TTC_FIXED_MASS_KG;
        let scaling = STRUCTURE_FRACTION + ADCS_FRACTION + PROPULSION_FRACTION;
        let dry_mass = Kilograms::new(fixed_mass / (1.0 - scaling));

        // Fuel for station-keeping + deorbit; drag area follows the array.
        let cross_section = SquareMeters::new(power.array_area().value() * 0.5 + 4.0);
        let profile = DragProfile::new(cross_section, dry_mass);
        let dv = DvBudget::for_mission(profile, self.orbit, self.lifetime);
        let fuel_mass = Engine::bipropellant().fuel_mass(dry_mass, dv.total());

        Ok(SizedSuDc {
            design: self.clone(),
            physical_compute_power: physical_power,
            isl_rate,
            cdh,
            thermal,
            power,
            payload_mass,
            payload_price,
            payload_units,
            dry_mass,
            fuel_mass,
            structure_mass: dry_mass * STRUCTURE_FRACTION,
        })
    }

    /// Sizes the design and produces its TCO report.
    ///
    /// # Errors
    ///
    /// Propagates [`DesignError`] from sizing.
    ///
    /// # Panics
    ///
    /// Panics if the sized satellite fails SSCM validation — possible only
    /// for extreme (e.g. overflowing) parameters; see
    /// [`SuDcDesign::try_tco`] for the fully fallible path.
    pub fn tco(&self) -> Result<TcoReport, DesignError> {
        Ok(self.size()?.tco())
    }

    /// Fully fallible sizing-and-costing pipeline over the shared
    /// workspace error type: sizing failures and SSCM validation failures
    /// (e.g. a design whose payload price overflows to infinity) both
    /// surface as structured errors instead of panics.
    ///
    /// # Errors
    ///
    /// Returns the converted [`DesignError`] from sizing, or the
    /// [`SudcError`] from [`SizedSuDc::try_tco`].
    pub fn try_tco(&self) -> Result<TcoReport, SudcError> {
        self.size()?.try_tco()
    }

    /// Radiation regime implied by the operating orbit.
    #[must_use]
    pub fn radiation_regime(&self) -> sudc_orbital::radiation::RadiationRegime {
        use sudc_orbital::radiation::RadiationRegime;
        let altitude_km = self.orbit.altitude().value() / 1e3;
        if altitude_km < 2_000.0 {
            RadiationRegime::LeoNonPolar
        } else if altitude_km < 30_000.0 {
            RadiationRegime::Meo
        } else {
            RadiationRegime::Geo
        }
    }

    /// Assesses whether the selected hardware survives the mission's total
    /// ionizing dose behind `shield_mils` of aluminum (§VIII's COTS
    /// suitability check).
    #[must_use]
    pub fn radiation_assessment(&self, shield_mils: f64) -> sudc_orbital::radiation::TidAssessment {
        sudc_orbital::radiation::TidAssessment::assess(
            self.radiation_regime(),
            shield_mils,
            self.lifetime,
            self.hardware.tid_tolerance,
        )
    }
}

/// A physically sized SµDC, ready for costing.
#[derive(Debug, Clone)]
pub struct SizedSuDc {
    /// The specification this sizing realizes.
    pub design: SuDcDesign,
    /// Physical payload power drawn (after redundancy and efficiency).
    pub physical_compute_power: Watts,
    /// Provisioned ISL capacity (after compression).
    pub isl_rate: GigabitsPerSecond,
    /// C&DH subsystem (incl. FSO terminal).
    pub cdh: CdhDesign,
    /// Thermal subsystem.
    pub thermal: ThermalDesign,
    /// Electrical power subsystem.
    pub power: PowerDesign,
    /// Packaged compute payload mass (incl. spares).
    pub payload_mass: Kilograms,
    /// Compute hardware procurement cost (incl. spares & packaging).
    pub payload_price: Usd,
    /// Installed server units (active + spares).
    pub payload_units: u32,
    /// Dry mass.
    pub dry_mass: Kilograms,
    /// Propellant mass.
    pub fuel_mass: Kilograms,
    /// Structure subsystem mass.
    pub structure_mass: Kilograms,
}

impl SizedSuDc {
    /// Wet (launch) mass.
    #[must_use]
    pub fn wet_mass(&self) -> Kilograms {
        self.dry_mass + self.fuel_mass
    }

    /// The SSCM-SµDC driver parameters for this sizing.
    #[must_use]
    pub fn sscm_inputs(&self) -> SscmInputs {
        SscmInputs {
            lifetime: self.design.lifetime,
            bol_power: self.power.bol_array_power(),
            dry_mass: self.dry_mass,
            fuel_mass: self.fuel_mass,
            structure_mass: self.structure_mass,
            thermal_mass: self.thermal.mass(),
            power_mass: self.power.mass(),
            rf_equivalent_rate: self.cdh.rf_equivalent_rate,
            pointing_arcsec: self.design.pointing_arcsec,
            compute_hardware_cost: self.payload_price,
        }
    }

    /// Costs the sized satellite.
    ///
    /// # Panics
    ///
    /// Panics if the sizing produced SSCM inputs that fail validation —
    /// possible only for extreme parameters (see [`SizedSuDc::try_tco`]).
    #[must_use]
    pub fn tco(&self) -> TcoReport {
        match self.try_tco() {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`SizedSuDc::tco`]: SSCM input validation and the
    /// cost rollup both report structured errors instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the structured error from
    /// [`SubsystemCers::try_estimate`] or [`TcoReport::try_new`].
    pub fn try_tco(&self) -> Result<TcoReport, SudcError> {
        let estimate = SubsystemCers::sudc_default().try_estimate(&self.sscm_inputs())?;
        let launch_cost = self.design.launch.cost(self.wet_mass());
        let ops_cost = OPS_COST_PER_YEAR * self.design.lifetime.value();
        TcoReport::try_new(estimate, launch_cost, ops_cost)
    }

    /// Exports the physical sizing as JSON.
    #[must_use]
    pub fn to_json(&self) -> sudc_par::json::Json {
        sudc_par::json::Json::object()
            .with(
                "physical_compute_power_w",
                self.physical_compute_power.value(),
            )
            .with("isl_rate_gbps", self.isl_rate.value())
            .with("payload_mass_kg", self.payload_mass.value())
            .with("payload_price_usd", self.payload_price.value())
            .with("payload_units", self.payload_units)
            .with("dry_mass_kg", self.dry_mass.value())
            .with("fuel_mass_kg", self.fuel_mass.value())
            .with("wet_mass_kg", self.wet_mass().value())
            .with("structure_mass_kg", self.structure_mass.value())
    }
}

/// Builder for [`SuDcDesign`].
#[derive(Debug, Clone)]
pub struct SuDcDesignBuilder {
    compute_power: Option<Watts>,
    hardware: HardwareSpec,
    efficiency_factor: f64,
    hardware_price_factor: f64,
    isl: IslSizing,
    compression: Compression,
    fso_efficiency_scalar: f64,
    lifetime: Years,
    orbit: CircularOrbit,
    redundancy: RedundancyScheme,
    spares: u32,
    pointing_arcsec: f64,
    launch: LaunchPricing,
}

impl Default for SuDcDesignBuilder {
    fn default() -> Self {
        Self {
            compute_power: None,
            hardware: rtx_3090(),
            efficiency_factor: 1.0,
            hardware_price_factor: 1.0,
            isl: IslSizing::SaturateWorstCase,
            compression: Compression::None,
            fso_efficiency_scalar: 1.0,
            lifetime: Years::new(5.0),
            orbit: CircularOrbit::reference_leo(),
            redundancy: RedundancyScheme::None,
            spares: 0,
            pointing_arcsec: 60.0,
            launch: LaunchPricing::falcon9_rideshare(),
        }
    }
}

impl SuDcDesignBuilder {
    /// Sets the application-visible compute power budget (required).
    #[must_use]
    pub fn compute_power(mut self, power: Watts) -> Self {
        self.compute_power = Some(power);
        self
    }

    /// Selects the processing hardware (default: RTX 3090).
    #[must_use]
    pub fn hardware(mut self, hardware: HardwareSpec) -> Self {
        self.hardware = hardware;
        self
    }

    /// Sets the payload energy-efficiency factor over the RTX 3090
    /// baseline (e.g. ~57.8 for the global accelerator of Fig. 17).
    #[must_use]
    pub fn efficiency_factor(mut self, factor: f64) -> Self {
        self.efficiency_factor = factor;
        self
    }

    /// Scales the hardware price (Fig. 16's logarithmic price response).
    #[must_use]
    pub fn hardware_price_factor(mut self, factor: f64) -> Self {
        self.hardware_price_factor = factor;
        self
    }

    /// Provisions a fixed ISL capacity instead of worst-case saturation.
    #[must_use]
    pub fn isl_rate(mut self, rate: GigabitsPerSecond) -> Self {
        self.isl = IslSizing::Fixed(rate);
        self
    }

    /// Sizes the ISL for a representative application mix instead of the
    /// worst-case (most lightweight) application.
    #[must_use]
    pub fn isl_typical(mut self) -> Self {
        self.isl = IslSizing::SaturateTypical;
        self
    }

    /// Applies on-board compression to ISL traffic.
    #[must_use]
    pub fn compression(mut self, compression: Compression) -> Self {
        self.compression = compression;
        self
    }

    /// Assumes FSO power efficiency improved by this factor over today.
    #[must_use]
    pub fn fso_efficiency_scalar(mut self, scalar: f64) -> Self {
        self.fso_efficiency_scalar = scalar;
        self
    }

    /// Sets the mission lifetime (default: 5 years).
    #[must_use]
    pub fn lifetime(mut self, lifetime: Years) -> Self {
        self.lifetime = lifetime;
        self
    }

    /// Sets the operating orbit (default: 550 km LEO).
    #[must_use]
    pub fn orbit(mut self, orbit: CircularOrbit) -> Self {
        self.orbit = orbit;
        self
    }

    /// Applies a payload redundancy scheme (Fig. 28).
    #[must_use]
    pub fn redundancy(mut self, scheme: RedundancyScheme) -> Self {
        self.redundancy = scheme;
        self
    }

    /// Carries cold-spare servers (near-zero-cost overprovisioning, §VII).
    #[must_use]
    pub fn spares(mut self, spares: u32) -> Self {
        self.spares = spares;
        self
    }

    /// Sets the pointing requirement in arcseconds.
    #[must_use]
    pub fn pointing_arcsec(mut self, arcsec: f64) -> Self {
        self.pointing_arcsec = arcsec;
        self
    }

    /// Selects launch pricing.
    #[must_use]
    pub fn launch(mut self, pricing: LaunchPricing) -> Self {
        self.launch = pricing;
        self
    }

    /// Validates and produces the design.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::InvalidParameter`] when a parameter is
    /// missing, negative, NaN, or out of range. Reports the *first*
    /// violation for the stable `&'static str` name; use
    /// [`SuDcDesignBuilder::try_build`] to see all of them at once.
    pub fn build(self) -> Result<SuDcDesign, DesignError> {
        self.try_build().map_err(|e| {
            let v = &e.violations()[0];
            DesignError::InvalidParameter {
                name: Self::static_name(&v.path),
                reason: format!("must be {}, got {}", v.allowed, v.value),
            }
        })
    }

    /// Fallible form of [`SuDcDesignBuilder::build`] over the shared
    /// workspace error type, reporting *every* invalid parameter in one
    /// pass.
    ///
    /// # Errors
    ///
    /// Returns a [`SudcError`] with one violation per offending parameter.
    pub fn try_build(self) -> Result<SuDcDesign, SudcError> {
        let mut d = Diagnostics::new("SuDcDesign");
        match self.compute_power {
            None => d.violation(
                "compute_power",
                "unset",
                "a specified compute power (required)",
            ),
            Some(p) => {
                d.positive("compute_power", p.value());
            }
        }
        d.positive("efficiency_factor", self.efficiency_factor);
        d.positive("hardware_price_factor", self.hardware_price_factor);
        d.positive("pointing_arcsec", self.pointing_arcsec);
        d.ensure(
            self.fso_efficiency_scalar >= 1.0 && self.fso_efficiency_scalar.is_finite(),
            "fso_efficiency_scalar",
            self.fso_efficiency_scalar,
            "a finite scalar >= 1",
        );
        d.positive("lifetime", self.lifetime.value());
        if let IslSizing::Fixed(rate) = self.isl {
            d.non_negative("isl_rate", rate.value());
        }
        let compute_power = self.compute_power.unwrap_or(Watts::new(0.0));
        d.into_result(SuDcDesign {
            compute_power,
            hardware: self.hardware,
            efficiency_factor: self.efficiency_factor,
            hardware_price_factor: self.hardware_price_factor,
            isl: self.isl,
            compression: self.compression,
            fso_efficiency_scalar: self.fso_efficiency_scalar,
            lifetime: self.lifetime,
            orbit: self.orbit,
            redundancy: self.redundancy,
            spares: self.spares,
            pointing_arcsec: self.pointing_arcsec,
            launch: self.launch,
        })
    }

    /// Maps a violation path back to the stable parameter name that
    /// [`DesignError::InvalidParameter`] has always reported.
    fn static_name(path: &str) -> &'static str {
        match path {
            "compute_power" => "compute_power",
            "efficiency_factor" => "efficiency_factor",
            "hardware_price_factor" => "hardware_price_factor",
            "pointing_arcsec" => "pointing_arcsec",
            "fso_efficiency_scalar" => "fso_efficiency_scalar",
            "lifetime" => "lifetime",
            "isl_rate" => "isl_rate",
            _ => "design parameter",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sudc_compute::hardware::{a100, kintex_ultrascale_xqr};

    fn four_kw() -> SuDcDesign {
        SuDcDesign::builder()
            .compute_power(Watts::from_kilowatts(4.0))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_requires_compute_power() {
        let err = SuDcDesign::builder().build().unwrap_err();
        assert!(
            matches!(err, DesignError::InvalidParameter { name, .. } if name == "compute_power")
        );
    }

    #[test]
    fn four_kw_design_sizes_plausibly() {
        let sized = four_kw().size().unwrap();
        // ~4 kW payload + CDH + pump -> EOL load ~5.5-6.5 kW.
        let eol = sized.power.eol_load.value();
        assert!(eol > 4500.0 && eol < 7000.0, "EOL load {eol}");
        // Dry mass in the small-sat (sub-1000 kg class, paper's SSCM scope).
        let dry = sized.dry_mass.value();
        assert!(dry > 400.0 && dry < 1100.0, "dry mass {dry} kg");
        // Fuel is a modest fraction of dry mass.
        assert!(sized.fuel_mass < sized.dry_mass * 0.3);
    }

    #[test]
    fn payload_mass_is_a_small_fraction_of_dry_mass() {
        let sized = four_kw().size().unwrap();
        let share = sized.payload_mass / sized.dry_mass;
        assert!(share < 0.25, "payload share {share}");
    }

    #[test]
    fn isl_autosizing_matches_worst_case_saturation() {
        let sized = four_kw().size().unwrap();
        // 4 kW x 2597 kpixel/J x 12 bit ~ 125 Gbit/s.
        assert!(sized.isl_rate.value() > 100.0 && sized.isl_rate.value() < 150.0);
    }

    #[test]
    fn compression_shrinks_the_provisioned_link() {
        let compressed = SuDcDesign::builder()
            .compute_power(Watts::from_kilowatts(4.0))
            .compression(Compression::NeuralQuasiLossless)
            .build()
            .unwrap()
            .size()
            .unwrap();
        let plain = four_kw().size().unwrap();
        assert!((plain.isl_rate.value() / compressed.isl_rate.value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn redundancy_multiplies_physical_power() {
        let tmr = SuDcDesign::builder()
            .compute_power(Watts::from_kilowatts(1.0))
            .redundancy(RedundancyScheme::Tmr)
            .build()
            .unwrap()
            .size()
            .unwrap();
        assert!((tmr.physical_compute_power.value() - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn efficiency_factor_shrinks_physical_power_not_isl() {
        let accel = SuDcDesign::builder()
            .compute_power(Watts::from_kilowatts(4.0))
            .efficiency_factor(57.8)
            .build()
            .unwrap()
            .size()
            .unwrap();
        let gpu = four_kw().size().unwrap();
        assert!(accel.physical_compute_power.value() < 100.0);
        assert_eq!(accel.isl_rate, gpu.isl_rate);
    }

    #[test]
    fn spares_increase_price_and_mass_only() {
        let base = four_kw().size().unwrap();
        let spared = SuDcDesign::builder()
            .compute_power(Watts::from_kilowatts(4.0))
            .spares(12)
            .build()
            .unwrap()
            .size()
            .unwrap();
        assert!(spared.payload_price > base.payload_price);
        assert!(spared.payload_mass > base.payload_mass);
        assert_eq!(spared.physical_compute_power, base.physical_compute_power);
    }

    #[test]
    fn a100_payload_is_supported() {
        let sized = SuDcDesign::builder()
            .compute_power(Watts::from_kilowatts(4.0))
            .hardware(a100())
            .build()
            .unwrap()
            .size()
            .unwrap();
        assert!(sized.payload_price > Usd::from_millions(0.2));
    }

    #[test]
    fn hardware_without_tdp_is_rejected_at_sizing() {
        let design = SuDcDesign::builder()
            .compute_power(Watts::new(100.0))
            .hardware(kintex_ultrascale_xqr())
            .build()
            .unwrap();
        let err = design.size().unwrap_err();
        assert!(matches!(err, DesignError::IncompleteHardware { .. }));
    }

    #[test]
    fn invalid_fso_scalar_is_rejected() {
        let err = SuDcDesign::builder()
            .compute_power(Watts::new(500.0))
            .fso_efficiency_scalar(0.2)
            .build()
            .unwrap_err();
        assert!(
            matches!(err, DesignError::InvalidParameter { name, .. } if name == "fso_efficiency_scalar")
        );
    }

    #[test]
    fn cots_gpus_survive_leo_behind_heavy_shielding() {
        // Paper §VIII: LEO + 400 mil shielding keeps COTS within tolerance.
        let design = four_kw();
        let shielded = design.radiation_assessment(400.0);
        assert!(
            shielded.survives_with_margin(1.5),
            "margin {}",
            shielded.margin
        );
        let thin = design.radiation_assessment(100.0);
        assert!(thin.margin < shielded.margin);
    }

    #[test]
    fn geo_orbits_demand_rad_hard_parts() {
        use sudc_orbital::CircularOrbit;
        use sudc_units::Meters;
        let geo = SuDcDesign::builder()
            .compute_power(Watts::from_kilowatts(4.0))
            .orbit(CircularOrbit::from_altitude(Meters::new(35_786e3)))
            .build()
            .unwrap();
        assert_eq!(
            geo.radiation_regime(),
            sudc_orbital::radiation::RadiationRegime::Geo
        );
        assert!(!geo.radiation_assessment(200.0).survives_with_margin(1.0));
    }

    #[test]
    fn error_display_is_informative() {
        let err = SuDcDesign::builder().build().unwrap_err();
        assert!(err.to_string().contains("compute_power"));
    }

    #[test]
    fn try_build_reports_every_violation_at_once() {
        let err = SuDcDesign::builder()
            .compute_power(Watts::new(f64::NAN))
            .efficiency_factor(-1.0)
            .fso_efficiency_scalar(0.5)
            .lifetime(Years::new(0.0))
            .try_build()
            .unwrap_err();
        let paths: Vec<&str> = err.violations().iter().map(|v| v.path.as_str()).collect();
        assert_eq!(
            paths,
            [
                "compute_power",
                "efficiency_factor",
                "fso_efficiency_scalar",
                "lifetime"
            ]
        );
        // The legacy error keeps reporting the first offender's static name.
        let legacy = SuDcDesign::builder()
            .compute_power(Watts::new(f64::NAN))
            .efficiency_factor(-1.0)
            .build()
            .unwrap_err();
        assert!(
            matches!(legacy, DesignError::InvalidParameter { name, .. } if name == "compute_power")
        );
    }
}
