//! Named end-to-end scenarios — the paper's working configurations as
//! ready-made designs.
//!
//! Scenarios give examples, benches, and downstream users a single source
//! of truth for "the paper's 4 kW SµDC" and its variants.

use sudc_comms::compression::Compression;
use sudc_compute::hardware;
use sudc_units::Watts;

use crate::design::{DesignError, SuDcDesign, SuDcDesignBuilder};

/// The named configurations used across the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// 500 W entry-level SµDC (Figs. 4–8's smallest point).
    Small,
    /// The 4 kW reference SµDC (Fig. 2, §IV-A's working size).
    Reference,
    /// 10 kW upper design point.
    Large,
    /// 4 kW with A100 payloads (Fig. 9).
    ReferenceA100,
    /// 4 kW with H100 payloads (Fig. 9).
    ReferenceH100,
    /// 4 kW with a global-accelerator payload (Fig. 17/18a-informed).
    ReferenceAccelerated,
    /// 4 kW with neural compression on the ISL (Fig. 10's best algorithm).
    ReferenceCompressed,
}

impl Scenario {
    /// All scenarios.
    #[must_use]
    pub fn all() -> [Self; 7] {
        [
            Self::Small,
            Self::Reference,
            Self::Large,
            Self::ReferenceA100,
            Self::ReferenceH100,
            Self::ReferenceAccelerated,
            Self::ReferenceCompressed,
        ]
    }

    /// The compute power of this scenario.
    #[must_use]
    pub fn compute_power(self) -> Watts {
        match self {
            Self::Small => Watts::new(500.0),
            Self::Large => Watts::from_kilowatts(10.0),
            _ => Watts::from_kilowatts(4.0),
        }
    }

    /// A builder preconfigured for this scenario (callers may customize
    /// further before building).
    #[must_use]
    pub fn builder(self) -> SuDcDesignBuilder {
        let base = SuDcDesign::builder().compute_power(self.compute_power());
        match self {
            Self::Small | Self::Reference | Self::Large => base,
            Self::ReferenceA100 => base.hardware(hardware::a100()),
            Self::ReferenceH100 => base.hardware(hardware::h100()),
            Self::ReferenceAccelerated => base
                .efficiency_factor(57.8)
                .hardware_price_factor(3.0)
                .isl_typical(),
            Self::ReferenceCompressed => base.compression(Compression::NeuralQuasiLossless),
        }
    }

    /// Builds the scenario's design.
    ///
    /// # Errors
    ///
    /// Propagates [`DesignError`] (never expected for the built-in set).
    pub fn design(self) -> Result<SuDcDesign, DesignError> {
        self.builder().build()
    }

    /// Builds the scenario's design over the shared workspace error type,
    /// reporting every invalid parameter (relevant when callers customize
    /// the [`Scenario::builder`] before building).
    ///
    /// # Errors
    ///
    /// Propagates the structured error from
    /// [`crate::design::SuDcDesignBuilder::try_build`].
    pub fn try_design(self) -> Result<SuDcDesign, sudc_errors::SudcError> {
        self.builder().try_build()
    }
}

impl core::fmt::Display for Scenario {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Self::Small => "500 W SµDC",
            Self::Reference => "4 kW SµDC",
            Self::Large => "10 kW SµDC",
            Self::ReferenceA100 => "4 kW SµDC (A100)",
            Self::ReferenceH100 => "4 kW SµDC (H100)",
            Self::ReferenceAccelerated => "4 kW SµDC (global accelerator)",
            Self::ReferenceCompressed => "4 kW SµDC (neural compression)",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_designs_and_costs() {
        for scenario in Scenario::all() {
            let design = scenario
                .design()
                .unwrap_or_else(|e| panic!("{scenario}: {e}"));
            let tco = design.tco().unwrap_or_else(|e| panic!("{scenario}: {e}"));
            assert!(tco.total().as_millions() > 5.0, "{scenario}");
        }
    }

    #[test]
    fn scenario_ordering_by_size() {
        let small = Scenario::Small.design().unwrap().tco().unwrap().total();
        let reference = Scenario::Reference.design().unwrap().tco().unwrap().total();
        let large = Scenario::Large.design().unwrap().tco().unwrap().total();
        assert!(small < reference && reference < large);
    }

    #[test]
    fn accelerated_scenario_is_cheapest_4kw_class() {
        let reference = Scenario::Reference.design().unwrap().tco().unwrap().total();
        let accel = Scenario::ReferenceAccelerated
            .design()
            .unwrap()
            .tco()
            .unwrap()
            .total();
        assert!(accel < reference * 0.6);
    }

    #[test]
    fn compression_scenario_trims_the_isl() {
        let plain = Scenario::Reference.design().unwrap().size().unwrap();
        let compressed = Scenario::ReferenceCompressed
            .design()
            .unwrap()
            .size()
            .unwrap();
        assert!(compressed.isl_rate < plain.isl_rate);
    }

    #[test]
    fn display_names_are_distinct() {
        let names: std::collections::HashSet<String> =
            Scenario::all().iter().map(ToString::to_string).collect();
        assert_eq!(names.len(), Scenario::all().len());
    }
}
