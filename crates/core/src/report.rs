//! Design-review report generation.
//!
//! Assembles a sized design, its TCO, and its key sensitivities into one
//! human-readable markdown document — the artifact a mission designer would
//! circulate for review.

use std::fmt::Write as _;

use sudc_sscm::sensitivity::tornado;
use sudc_sscm::subsystems::SubsystemCers;

use crate::design::{DesignError, SuDcDesign};

/// Renders a full design-review document for a design.
///
/// # Errors
///
/// Propagates [`DesignError`] from sizing.
///
/// # Panics
///
/// Never panics for designs that size successfully (string formatting is
/// infallible).
pub fn design_review(design: &SuDcDesign) -> Result<String, DesignError> {
    let sized = design.size()?;
    let report = sized.tco();
    let mut out = String::new();

    writeln!(out, "# SµDC design review").expect("write to string");
    writeln!(out).expect("write to string");
    writeln!(out, "## Configuration").expect("write to string");
    writeln!(
        out,
        "- compute power (equivalent): {:.2} kW on {}",
        design.compute_power.as_kilowatts(),
        design.hardware.name
    )
    .expect("write to string");
    writeln!(
        out,
        "- efficiency factor {:.1}x, redundancy {}, {} cold spares",
        design.efficiency_factor, design.redundancy, design.spares
    )
    .expect("write to string");
    writeln!(
        out,
        "- lifetime {} at {:.0} km altitude",
        design.lifetime,
        design.orbit.altitude().value() / 1e3
    )
    .expect("write to string");

    writeln!(out, "\n## Physical sizing").expect("write to string");
    writeln!(
        out,
        "- payload: {} units, {:.0} kg, drawing {:.0} W",
        sized.payload_units,
        sized.payload_mass.value(),
        sized.physical_compute_power.value()
    )
    .expect("write to string");
    writeln!(
        out,
        "- ISL: {:.1} Gbit/s ({} compression)",
        sized.isl_rate.value(),
        design.compression
    )
    .expect("write to string");
    writeln!(
        out,
        "- thermal: {:.1} m² radiator at {:.0} °C, {:.0} W pump",
        sized.thermal.radiator_area().value(),
        sized.thermal.radiator_temperature.as_celsius(),
        sized.thermal.pump_power.value()
    )
    .expect("write to string");
    writeln!(
        out,
        "- power: {:.1} kW BOL array, {:.0} kg subsystem",
        sized.power.bol_array_power().as_kilowatts(),
        sized.power.mass().value()
    )
    .expect("write to string");
    writeln!(
        out,
        "- mass: {:.0} kg dry + {:.0} kg fuel = {:.0} kg wet",
        sized.dry_mass.value(),
        sized.fuel_mass.value(),
        sized.wet_mass().value()
    )
    .expect("write to string");

    writeln!(out, "\n## Total cost of ownership").expect("write to string");
    writeln!(
        out,
        "- first unit {:.1} $M (NRE {:.1} $M); marginal unit {:.1} $M",
        report.total().as_millions(),
        report.nre().as_millions(),
        report.marginal_unit().as_millions()
    )
    .expect("write to string");
    writeln!(out, "\n| line | cost ($M) | share |").expect("write to string");
    writeln!(out, "|---|---|---|").expect("write to string");
    for (line, cost) in report.lines() {
        writeln!(
            out,
            "| {line} | {:.2} | {:.1}% |",
            cost.as_millions(),
            100.0 * report.share(line)
        )
        .expect("write to string");
    }

    writeln!(out, "\n## Cost-driver sensitivity (±30%)").expect("write to string");
    let bars = tornado(&SubsystemCers::sudc_default(), &sized.sscm_inputs(), 0.3);
    for bar in bars.iter().take(4) {
        writeln!(
            out,
            "- {}: {:.1}–{:.1} $M ({:.1}% swing)",
            bar.driver,
            bar.low.as_millions(),
            bar.high.as_millions(),
            100.0 * bar.relative_swing
        )
        .expect("write to string");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn review_covers_every_section() {
        let design = Scenario::Reference.design().unwrap();
        let doc = design_review(&design).unwrap();
        for section in [
            "# SµDC design review",
            "## Configuration",
            "## Physical sizing",
            "## Total cost of ownership",
            "## Cost-driver sensitivity",
        ] {
            assert!(doc.contains(section), "missing {section}");
        }
    }

    #[test]
    fn review_reports_the_tco_table() {
        let design = Scenario::Small.design().unwrap();
        let doc = design_review(&design).unwrap();
        assert!(doc.contains("| Power |"));
        assert!(doc.contains("| Launch |"));
        assert!(doc.matches('|').count() > 30, "table rows expected");
    }

    #[test]
    fn every_scenario_produces_a_review() {
        for scenario in Scenario::all() {
            let doc = design_review(&scenario.design().unwrap()).unwrap();
            assert!(doc.len() > 500, "{scenario}: short review");
        }
    }
}
