//! Total-cost-of-ownership rollup for one SµDC.

use sudc_errors::{Diagnostics, SudcError};
use sudc_sscm::subsystems::Subsystem;
use sudc_sscm::CostEstimate;
use sudc_units::Usd;

/// Ground-segment / flight-operations cost per year of mission.
pub const OPS_COST_PER_YEAR: Usd = Usd::new(900000.0);

/// A TCO line item beyond the satellite CERs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TcoLine {
    /// A satellite subsystem (from the SSCM-SµDC estimate).
    Satellite(Subsystem),
    /// Launch (price per kg × wet mass + integration).
    Launch,
    /// Mission operations over the lifetime.
    Operations,
}

impl core::fmt::Display for TcoLine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Satellite(s) => write!(f, "{s}"),
            Self::Launch => f.write_str("Launch"),
            Self::Operations => f.write_str("Operations"),
        }
    }
}

/// The complete TCO of one SµDC: satellite NRE + RE, launch, and operations.
#[derive(Debug, Clone, PartialEq)]
pub struct TcoReport {
    estimate: CostEstimate,
    launch: Usd,
    operations: Usd,
}

impl TcoReport {
    /// Assembles a report. Infallible by construction; see
    /// [`TcoReport::try_new`] for the validating form.
    #[must_use]
    pub fn new(estimate: CostEstimate, launch: Usd, operations: Usd) -> Self {
        Self {
            estimate,
            launch,
            operations,
        }
    }

    /// Validating form of [`TcoReport::new`]: rejects non-finite or
    /// negative launch and operations costs, which would silently poison
    /// every share and total downstream.
    ///
    /// # Errors
    ///
    /// Returns a structured error naming each offending cost.
    pub fn try_new(
        estimate: CostEstimate,
        launch: Usd,
        operations: Usd,
    ) -> Result<Self, SudcError> {
        let mut d = Diagnostics::new("TcoReport");
        d.non_negative("launch", launch.value());
        d.non_negative("operations", operations.value());
        d.into_result(Self {
            estimate,
            launch,
            operations,
        })
    }

    /// The underlying SSCM-SµDC estimate.
    #[must_use]
    pub fn estimate(&self) -> &CostEstimate {
        &self.estimate
    }

    /// Launch cost.
    #[must_use]
    pub fn launch_cost(&self) -> Usd {
        self.launch
    }

    /// Lifetime operations cost.
    #[must_use]
    pub fn operations_cost(&self) -> Usd {
        self.operations
    }

    /// First-unit TCO: satellite NRE + RE + launch + operations.
    #[must_use]
    pub fn total(&self) -> Usd {
        self.estimate.first_unit() + self.launch + self.operations
    }

    /// Marginal TCO of a subsequent identical unit (RE + launch + ops; no
    /// learning effects — see `sudc_sscm::wright` for experience curves).
    #[must_use]
    pub fn marginal_unit(&self) -> Usd {
        self.estimate.recurring_unit() + self.launch + self.operations
    }

    /// Satellite non-recurring cost.
    #[must_use]
    pub fn nre(&self) -> Usd {
        self.estimate.nre_total()
    }

    /// All TCO lines with their first-unit costs.
    #[must_use]
    pub fn lines(&self) -> Vec<(TcoLine, Usd)> {
        let mut lines: Vec<(TcoLine, Usd)> = self
            .estimate
            .items()
            .iter()
            .map(|i| (TcoLine::Satellite(i.subsystem), i.total()))
            .collect();
        lines.push((TcoLine::Launch, self.launch));
        lines.push((TcoLine::Operations, self.operations));
        lines
    }

    /// Share of total TCO attributable to one line.
    #[must_use]
    pub fn share(&self, line: TcoLine) -> f64 {
        let cost = match line {
            TcoLine::Satellite(s) => self.estimate.cost_of(s).map_or(Usd::ZERO, |c| c.total()),
            TcoLine::Launch => self.launch,
            TcoLine::Operations => self.operations,
        };
        cost / self.total()
    }

    /// Combined share of the power and thermal subsystems — the paper's
    /// "over a third of TCO is in power and thermal management subsystems".
    #[must_use]
    pub fn power_and_thermal_share(&self) -> f64 {
        self.share(TcoLine::Satellite(Subsystem::Power))
            + self.share(TcoLine::Satellite(Subsystem::Thermal))
    }

    /// Exports the report as JSON: every line item in USD plus the rollups.
    #[must_use]
    pub fn to_json(&self) -> sudc_par::json::Json {
        let lines = self
            .lines()
            .into_iter()
            .fold(sudc_par::json::Json::object(), |obj, (line, cost)| {
                obj.with(&line.to_string(), cost.value())
            });
        sudc_par::json::Json::object()
            .with("lines_usd", lines)
            .with("nre_usd", self.nre().value())
            .with("marginal_unit_usd", self.marginal_unit().value())
            .with("total_usd", self.total().value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sudc_sscm::subsystems::SubsystemCers;
    use sudc_sscm::SscmInputs;

    fn report() -> TcoReport {
        let estimate = SubsystemCers::sudc_default().estimate(&SscmInputs::reference());
        TcoReport::new(estimate, Usd::from_millions(2.5), Usd::from_millions(3.5))
    }

    #[test]
    fn total_sums_all_components() {
        let r = report();
        let expected = r.estimate().first_unit() + r.launch_cost() + r.operations_cost();
        assert_eq!(r.total(), expected);
    }

    #[test]
    fn marginal_unit_drops_nre() {
        let r = report();
        assert!((r.total() - r.marginal_unit() - r.nre()).abs() < Usd::new(1.0));
    }

    #[test]
    fn shares_sum_to_one() {
        let r = report();
        let total: f64 = r.lines().iter().map(|&(line, _)| r.share(line)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lines_include_launch_and_ops() {
        let lines = report().lines();
        assert!(lines.iter().any(|(l, _)| *l == TcoLine::Launch));
        assert!(lines.iter().any(|(l, _)| *l == TcoLine::Operations));
        assert_eq!(lines.len(), 12);
    }

    #[test]
    fn display_names() {
        assert_eq!(TcoLine::Launch.to_string(), "Launch");
        assert_eq!(TcoLine::Satellite(Subsystem::Power).to_string(), "Power");
    }
}
