//! SµDC design pipeline and TCO analysis — the paper's primary contribution.
//!
//! This crate closes the loop the paper describes in §II: a compute power
//! budget becomes a payload, the payload's heat becomes a thermal subsystem,
//! payload + pump power become a power subsystem, everything becomes mass,
//! mass becomes fuel and launch cost, and the resulting driver parameters
//! feed the SSCM-SµDC cost model.
//!
//! - [`design`] — the [`design::SuDcDesign`] builder and the fixed-point
//!   sizing pipeline;
//! - [`tco`] — the [`tco::TcoReport`] rollup (satellite NRE/RE + launch +
//!   operations);
//! - [`analysis`] — one function per paper figure/table (see `DESIGN.md`
//!   for the experiment index);
//! - [`scenario`] — the paper's named working configurations;
//! - [`dynamics`] — the scenario → discrete-event-simulation bridge
//!   consumed by `sudc-sim`;
//! - [`report`] — markdown design-review generation.
//!
//! # Examples
//!
//! ```
//! use sudc_core::design::SuDcDesign;
//! use sudc_units::Watts;
//!
//! let design = SuDcDesign::builder()
//!     .compute_power(Watts::from_kilowatts(4.0))
//!     .build()?;
//! let report = design.tco()?;
//! assert!(report.total().as_millions() > 1.0);
//! # Ok::<(), sudc_core::design::DesignError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod design;
pub mod dynamics;
pub mod report;
pub mod scenario;
pub mod tco;

pub use design::{DesignError, SuDcDesign, SuDcDesignBuilder};
pub use scenario::Scenario;
pub use sudc_errors::{Diagnostics, SudcError, Violation};
pub use tco::TcoReport;
