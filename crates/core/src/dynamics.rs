//! Scenario → dynamic-simulation bridge.
//!
//! The steady-state models answer "how big must the SµDC be?"; the
//! discrete-event simulator (`sudc-sim`) answers "what happens minute to
//! minute?". This module is the seam between them: it distills a named
//! [`Scenario`] plus the paper's constellation/ground-segment models into a
//! [`DynamicScenario`] — the plain physical quantities (rates, sizes,
//! windows, node counts) a simulation needs — without depending on the
//! simulator itself, so the dependency arrow stays `sudc-sim → sudc-core`.
//!
//! Every number is derived from an existing model rather than invented
//! here: image cadence from [`sudc_orbital::imaging`], ISL provisioning
//! from the sized design, downlink windows from
//! [`sudc_orbital::contact::PassGeometry`], insight sizes from
//! [`sudc_comms::downlink`], and compute service times from the Table III
//! workload suite.

use sudc_comms::downlink::{InsightDownlink, InsightKind};
use sudc_compute::gpu::GpuEnergyModel;
use sudc_compute::workloads;
use sudc_constellation::eo::{EoConstellation, DEFAULT_IMAGING_DUTY_CYCLE};
use sudc_constellation::EdgeFiltering;
use sudc_orbital::contact::{GroundNetwork, PassGeometry};
use sudc_units::{Gigabits, GigabitsPerSecond, Seconds, Years};

use crate::design::DesignError;
use crate::scenario::Scenario;

/// The paper's power-limited active node count (`k = 10`, §VII).
pub const REQUIRED_NODES: u32 = 10;

/// Fraction of processed frames that carry a downlink-worthy insight.
const INSIGHT_FRACTION: f64 = 0.2;

/// Default ground-station elevation mask for downlink windows, degrees.
const ELEVATION_MASK_DEG: f64 = 10.0;

/// Everything a dynamic (discrete-event) simulation needs to know about a
/// scenario, as plain physical quantities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicScenario {
    /// EO satellites feeding the SµDC.
    pub satellites: u32,
    /// Mean interval between frames on one satellite *while imaging*.
    pub frame_interval: Seconds,
    /// Orbit period (imaging on/off windows follow it).
    pub orbit_period: Seconds,
    /// Fraction of each orbit a satellite spends imaging.
    pub imaging_duty_cycle: f64,
    /// Raw size of one image.
    pub image_size: Gigabits,
    /// Edge-filtering configuration on the EO satellites.
    pub filtering: EdgeFiltering,
    /// Provisioned ISL rate into the SµDC.
    pub isl_rate: GigabitsPerSecond,
    /// Per-image service time on a single compute node (the whole Table III
    /// application suite applied to every frame).
    pub per_image_service: Seconds,
    /// Energy-minimizing batch size the dispatcher accumulates toward.
    pub batch_target: u32,
    /// Dispatch a partial batch after this long even if under-full.
    pub batch_timeout: Seconds,
    /// Installed compute nodes (spares included).
    pub nodes: u32,
    /// Nodes needed for full capability (power-limited).
    pub required: u32,
    /// Powered-node mean time to failure (infinite = failures disabled).
    pub node_mttf: Seconds,
    /// Weibull shape for node lifetimes (1 = exponential).
    pub weibull_shape: f64,
    /// Aging rate of a powered-off spare relative to a powered node.
    pub dormant_aging: f64,
    /// Gap between ground-contact windows.
    pub contact_gap: Seconds,
    /// Usable duration of one contact window.
    pub contact_window: Seconds,
    /// Downlink rate during contact.
    pub downlink_rate: GigabitsPerSecond,
    /// Size of the insight product one processed image downlinks.
    pub insight_size: Gigabits,
}

impl DynamicScenario {
    /// Distills `scenario` (sized for `satellites` EO satellites) into its
    /// dynamic quantities.
    ///
    /// # Errors
    ///
    /// Propagates [`DesignError`] from the sizing pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `satellites` is zero.
    pub fn from_scenario(scenario: Scenario, satellites: u32) -> Result<Self, DesignError> {
        let constellation = EoConstellation::reference(satellites);
        let sized = scenario.design()?.size()?;
        let orbit = constellation.orbit;
        let imager = constellation.imager;

        // Compute: every frame runs the full Table III application suite,
        // spread across the paper's 10 power-limited active nodes.
        let model_batch = GpuEnergyModel::fit(&workloads::most_compute_intensive());
        let suite_batch_time: f64 = workloads::suite()
            .iter()
            .map(|w| w.inference_time.value())
            .sum();
        let per_image_service =
            Seconds::new(suite_batch_time / f64::from(model_batch.reference_batch));

        // Ground segment: commercial network cadence, pass length from the
        // deterministic elevation-mask geometry.
        let network = GroundNetwork::commercial(3);
        let pass = PassGeometry::new(orbit, ELEVATION_MASK_DEG);
        let insight = InsightDownlink::new(InsightKind::Detections, 1.0);
        let insight_bits = imager.pixels_per_frame() as f64
            * insight.kind.bits_per_input_pixel()
            * INSIGHT_FRACTION;

        Ok(Self {
            satellites,
            frame_interval: Seconds::new(60.0 / imager.frames_per_minute(orbit)),
            orbit_period: orbit.period(),
            imaging_duty_cycle: DEFAULT_IMAGING_DUTY_CYCLE,
            image_size: Gigabits::new(
                imager.pixels_per_frame() as f64 * f64::from(imager.bits_per_pixel) / 1e9,
            ),
            filtering: EdgeFiltering::none(),
            isl_rate: sized.isl_rate,
            per_image_service,
            batch_target: model_batch.reference_batch,
            batch_timeout: Seconds::new(120.0),
            nodes: REQUIRED_NODES,
            required: REQUIRED_NODES,
            node_mttf: Years::new(2.0).to_seconds(),
            weibull_shape: 1.0,
            dormant_aging: 0.1,
            contact_gap: network.mean_contact_gap(),
            contact_window: pass.max_pass_duration(),
            downlink_rate: network.downlink_rate,
            insight_size: Gigabits::new(insight_bits / 1e9),
        })
    }

    /// Enables collaborative edge filtering (paper §V).
    #[must_use]
    pub fn with_filtering(mut self, filtering: EdgeFiltering) -> Self {
        self.filtering = filtering;
        self
    }

    /// Installs `spares` cold spares over the required node count, aging at
    /// `dormant_aging` of the powered rate while dormant.
    ///
    /// # Panics
    ///
    /// Panics if `dormant_aging` is outside `[0, 1]`.
    #[must_use]
    pub fn with_cold_spares(mut self, spares: u32, dormant_aging: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&dormant_aging),
            "dormant aging must be in [0, 1], got {dormant_aging}"
        );
        self.nodes = self.required + spares;
        self.dormant_aging = dormant_aging;
        self
    }

    /// Overrides the powered-node mean time to failure — chaos campaigns
    /// use accelerated aging so failure dynamics are observable inside an
    /// operations-scale run.
    ///
    /// # Panics
    ///
    /// Panics if `mttf` is not positive (infinite disables failures).
    #[must_use]
    pub fn with_node_mttf(mut self, mttf: Seconds) -> Self {
        assert!(
            mttf.value() > 0.0 && !mttf.value().is_nan(),
            "node MTTF must be positive, got {}",
            mttf.value()
        );
        self.node_mttf = mttf;
        self
    }

    /// Overrides the Weibull shape of node lifetimes (1 = exponential,
    /// < 1 = infant mortality, > 1 = wear-out).
    ///
    /// # Panics
    ///
    /// Panics if `shape` is not positive and finite.
    #[must_use]
    pub fn with_weibull_shape(mut self, shape: f64) -> Self {
        assert!(
            shape.is_finite() && shape > 0.0,
            "Weibull shape must be positive and finite, got {shape}"
        );
        self.weibull_shape = shape;
        self
    }

    /// Aggregate image rate reaching the SµDC after filtering, images/s.
    #[must_use]
    pub fn arrival_rate(&self) -> f64 {
        f64::from(self.satellites) * self.imaging_duty_cycle / self.frame_interval.value()
            * self.filtering.pass_fraction()
    }

    /// Aggregate compute utilization implied by the steady-state rates —
    /// the sanity anchor the simulator's measured utilization should
    /// approach on long runs.
    #[must_use]
    pub fn offered_compute_load(&self) -> f64 {
        self.arrival_rate() * self.per_image_service.value() / f64::from(self.required)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference() -> DynamicScenario {
        DynamicScenario::from_scenario(Scenario::Reference, 64).unwrap()
    }

    #[test]
    fn reference_dynamics_match_the_paper_working_points() {
        let d = reference();
        // ~6 frames/min per satellite.
        let fpm = 60.0 / d.frame_interval.value();
        assert!(fpm > 5.0 && fpm < 7.0, "frames/min {fpm}");
        // One 8k x 8k 12-bit frame is ~0.8 Gbit.
        assert!((d.image_size.value() - 0.805).abs() < 0.01);
        // Insights are orders of magnitude smaller than raw frames.
        assert!(d.insight_size.value() < d.image_size.value() / 1e3);
        // LEO pass: minutes; commercial 3-station gap: hours.
        assert!(d.contact_window.value() > 300.0 && d.contact_window.value() < 1200.0);
        assert!(d.contact_gap.value() > 3600.0);
    }

    #[test]
    fn baseline_load_is_heavy_but_feasible() {
        // The no-filtering suite workload should stress the 10 active
        // nodes without exceeding them (else backlogs grow unboundedly and
        // the collaborative comparison degenerates).
        let load = reference().offered_compute_load();
        assert!(load > 0.35 && load < 0.95, "offered load {load}");
    }

    #[test]
    fn filtering_cuts_the_offered_load_proportionally() {
        let base = reference();
        let filtered = reference().with_filtering(EdgeFiltering::cloud_filtering());
        let ratio = filtered.offered_compute_load() / base.offered_compute_load();
        assert!((ratio - 1.0 / 3.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn cold_spares_extend_the_pool_without_changing_required() {
        let d = reference().with_cold_spares(10, 0.1);
        assert_eq!(d.nodes, 20);
        assert_eq!(d.required, 10);
        assert!((d.dormant_aging - 0.1).abs() < 1e-12);
    }

    #[test]
    fn isl_is_provisioned_far_above_the_offered_rate() {
        // The design sizes the ISL to saturate compute, so the raw
        // constellation stream must fit with huge margin.
        let d = reference();
        let offered_gbps = d.arrival_rate() * d.image_size.value();
        assert!(d.isl_rate.value() > 3.0 * offered_gbps);
    }
}
