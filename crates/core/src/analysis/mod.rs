//! One analysis function per paper figure/table.
//!
//! The experiment index in `DESIGN.md` maps each figure to its function:
//!
//! | Figures | Module |
//! |---|---|
//! | 3, 9, 11, 15, 16 | [`architecture`] |
//! | 4, 5, 6 | [`sweeps`] |
//! | 7, 8, 10 | [`comms`] |
//! | 19, 21, 22, 23 | [`fleet`] |
//! | 28 | [`reliability_cost`] |
//! | §I / §IV-A latency motivation | [`latency`] |
//! | design-choice ablations | [`ablation`] |
//! | power × architecture Pareto fronts | [`tradespace`] |
//!
//! (Figs. 12, 17, 24–27 are served directly by `sudc-thermal`,
//! `sudc-accel`, and `sudc-reliability`.)

pub mod ablation;
pub mod architecture;
pub mod comms;
pub mod fleet;
pub mod latency;
pub mod reliability_cost;
pub mod sweeps;
pub mod tradespace;

use crate::design::{DesignError, SuDcDesign};
use crate::tco::TcoReport;
use sudc_units::Watts;

/// Builds the default (RTX 3090, 5-year, worst-case ISL) design at a power.
///
/// # Errors
///
/// Propagates [`DesignError`] from the builder.
pub fn default_design(compute_power: Watts) -> Result<SuDcDesign, DesignError> {
    SuDcDesign::builder().compute_power(compute_power).build()
}

/// TCO of the default design at a power.
///
/// # Errors
///
/// Propagates [`DesignError`].
pub fn default_tco(compute_power: Watts) -> Result<TcoReport, DesignError> {
    default_design(compute_power)?.tco()
}

/// The paper's three reference SµDC sizes: 0.5, 4, and 10 kW.
#[must_use]
pub fn reference_powers() -> [Watts; 3] {
    [
        Watts::new(500.0),
        Watts::from_kilowatts(4.0),
        Watts::from_kilowatts(10.0),
    ]
}
