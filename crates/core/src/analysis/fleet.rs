//! Constellation-architecture analyses: collaborative compute (Figs. 19,
//! 21) and distributed vs. monolithic fleets (Figs. 22, 23).

use sudc_constellation::distributed::{fleet_cost, optimal_fleet, FleetPoint};
use sudc_constellation::EdgeFiltering;
use sudc_sscm::LearningCurve;
use sudc_units::Watts;

use crate::design::{DesignError, SuDcDesign};

/// Fig. 19: relative SµDC TCO vs. edge filtering rate. Baseline is the
/// unfiltered design at `baseline_power`.
///
/// # Errors
///
/// Propagates [`DesignError`].
pub fn collaborative_tco(
    baseline_power: Watts,
    filtering_rates: &[f64],
) -> Result<Vec<(f64, f64)>, DesignError> {
    let baseline = SuDcDesign::builder()
        .compute_power(baseline_power)
        .build()?
        .tco()?
        .total();
    filtering_rates
        .iter()
        .map(|&rate| {
            let filtering = EdgeFiltering::new(rate);
            let tco = SuDcDesign::builder()
                .compute_power(filtering.reduced_compute(baseline_power))
                .build()?
                .tco()?
                .total();
            Ok((rate, tco / baseline))
        })
        .collect()
}

/// One Fig. 21 row: collaborative-constellation benefit for one payload
/// architecture.
#[derive(Debug, Clone)]
pub struct CollaborativeRow {
    /// Architecture label.
    pub architecture: String,
    /// Energy-efficiency factor of the payload over the GPU baseline.
    pub efficiency_factor: f64,
    /// TCO without filtering, relative to the GPU unfiltered baseline.
    pub unfiltered_tco: f64,
    /// TCO with cloud filtering (≈ 2/3 data reduction), same normalization.
    pub filtered_tco: f64,
}

impl CollaborativeRow {
    /// The collaborative improvement factor (unfiltered / filtered).
    #[must_use]
    pub fn improvement(&self) -> f64 {
        self.unfiltered_tco / self.filtered_tco
    }
}

/// Fig. 21: TCO benefit of a collaborative constellation for GPU, global-
/// accelerator, and heterogeneous payloads, at cloud-filtering rates.
///
/// `architectures` supplies `(label, efficiency factor)` pairs — e.g. the
/// Fig. 17 outcomes (1.0, ~57.8, ~116).
///
/// # Errors
///
/// Propagates [`DesignError`].
pub fn collaborative_sensitivity(
    baseline_power: Watts,
    architectures: &[(&str, f64)],
) -> Result<Vec<CollaborativeRow>, DesignError> {
    let filtering = EdgeFiltering::cloud_filtering();
    let gpu_baseline = SuDcDesign::builder()
        .compute_power(baseline_power)
        .build()?
        .tco()?
        .total();
    architectures
        .iter()
        .map(|&(label, factor)| {
            let tco_at = |power: Watts| -> Result<f64, DesignError> {
                Ok(SuDcDesign::builder()
                    .compute_power(power)
                    .efficiency_factor(factor)
                    .build()?
                    .tco()?
                    .total()
                    / gpu_baseline)
            };
            Ok(CollaborativeRow {
                architecture: label.to_string(),
                efficiency_factor: factor,
                unfiltered_tco: tco_at(baseline_power)?,
                filtered_tco: tco_at(filtering.reduced_compute(baseline_power))?,
            })
        })
        .collect()
}

/// One Fig. 22 series: marginal satellite cost vs. cumulative units.
#[derive(Debug, Clone)]
pub struct MarginalCostSeries {
    /// SµDC size.
    pub power: Watts,
    /// `(unit index, marginal cost in $M)` points. Unit 1 includes NRE.
    pub points: Vec<(u32, f64)>,
}

/// Fig. 22: Wright's-law marginal cost for SµDC design points (`b = 0.75`).
///
/// # Errors
///
/// Propagates [`DesignError`].
pub fn marginal_cost_curve(
    powers: &[Watts],
    units: &[u32],
    curve: LearningCurve,
) -> Result<Vec<MarginalCostSeries>, DesignError> {
    powers
        .iter()
        .map(|&p| {
            let report = SuDcDesign::builder().compute_power(p).build()?.tco()?;
            let first_re = report.marginal_unit();
            let points = units
                .iter()
                .map(|&n| {
                    let cost = if n == 1 {
                        report.total()
                    } else {
                        curve.unit_cost(first_re, n)
                    };
                    (n, cost.as_millions())
                })
                .collect();
            Ok(MarginalCostSeries { power: p, points })
        })
        .collect()
}

/// One Fig. 23 series: fleet TCO vs. fleet size at one progress ratio.
#[derive(Debug, Clone)]
pub struct DistributedSeries {
    /// Wright's-law progress ratio.
    pub progress_ratio: f64,
    /// `(fleet size, total TCO relative to the monolith)` points.
    pub points: Vec<(u32, f64)>,
    /// The cost-minimizing fleet size.
    pub optimal_satellites: u32,
}

/// Fig. 23: total cost of reaching `target_power` with `k` SµDCs of
/// `target_power / k` each, across Wright's-law progress ratios. NRE is
/// paid once per design and amortized across the fleet.
///
/// # Errors
///
/// Propagates [`DesignError`].
///
/// # Panics
///
/// Panics if `fleet_sizes` is empty or contains zero.
pub fn distributed_tco(
    target_power: Watts,
    fleet_sizes: &[u32],
    progress_ratios: &[f64],
) -> Result<Vec<DistributedSeries>, DesignError> {
    assert!(!fleet_sizes.is_empty(), "no fleet sizes supplied");
    progress_ratios
        .iter()
        .map(|&b| {
            let learning = LearningCurve::new(b);
            let mut points = Vec::new();
            let mut fleet_points = Vec::new();
            let mut monolith = None;
            for &k in fleet_sizes {
                assert!(k > 0, "fleet size must be positive");
                let per_sat = target_power / f64::from(k);
                let report = SuDcDesign::builder()
                    .compute_power(per_sat)
                    .build()?
                    .tco()?;
                let launch_and_ops = report.launch_cost() + report.operations_cost();
                let total = fleet_cost(
                    k,
                    report.nre(),
                    report.estimate().recurring_unit(),
                    launch_and_ops,
                    learning,
                );
                if k == 1 {
                    monolith = Some(total);
                }
                fleet_points.push(FleetPoint {
                    satellites: k,
                    total_cost: total,
                });
            }
            let monolith = monolith.unwrap_or(fleet_points[0].total_cost);
            for fp in &fleet_points {
                points.push((fp.satellites, fp.total_cost / monolith));
            }
            Ok(DistributedSeries {
                progress_ratio: b,
                points,
                optimal_satellites: optimal_fleet(&fleet_points).satellites,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filtering_halves_compute_and_cuts_tco() {
        // Paper Fig. 19: decreasing cost with filtering rate; at f = 0.5 the
        // SµDC halves in size (TCO falls, but sublinearly).
        let curve = collaborative_tco(Watts::from_kilowatts(4.0), &[0.0, 0.25, 0.5, 0.75]).unwrap();
        assert!((curve[0].1 - 1.0).abs() < 1e-9);
        for pair in curve.windows(2) {
            assert!(pair[1].1 < pair[0].1, "TCO must fall with filtering");
        }
        let at_half = curve[2].1;
        assert!(at_half > 0.5 && at_half < 0.95, "f=0.5 TCO {at_half}");
    }

    #[test]
    fn collaborative_gains_match_paper_band() {
        // Paper §V: cloud filtering yields 1.74x (GPU), 1.33x (global
        // accelerator), 1.31x (heterogeneous) TCO improvements at 4 kW.
        let rows = collaborative_sensitivity(
            Watts::from_kilowatts(4.0),
            &[
                ("GPU", 1.0),
                ("Global accel", 57.8),
                ("Per-layer accel", 116.0),
            ],
        )
        .unwrap();
        let gpu = rows[0].improvement();
        let global = rows[1].improvement();
        let hetero = rows[2].improvement();
        assert!(gpu > 1.3 && gpu < 2.1, "GPU improvement {gpu}");
        assert!(global < gpu, "efficient archs benefit less");
        assert!(hetero <= global + 1e-9);
        assert!(hetero > 1.05, "still a real improvement: {hetero}");
    }

    #[test]
    fn hundredth_unit_costs_less_than_half() {
        // Paper Fig. 22: "By the time the 100th satellite is manufactured,
        // cost has decreased by over 50%."
        let series = marginal_cost_curve(
            &[Watts::from_kilowatts(4.0)],
            &[1, 2, 10, 100],
            LearningCurve::aerospace_default(),
        )
        .unwrap();
        let pts = &series[0].points;
        let second = pts[1].1;
        let hundredth = pts[3].1;
        assert!(hundredth < 0.5 * second, "{second} -> {hundredth}");
    }

    #[test]
    fn hundredth_10kw_is_cheaper_than_first_4kw() {
        // Paper Fig. 22: "the 100th 10 kW SµDC is cheaper than the first
        // 4 kW SµDC".
        let series = marginal_cost_curve(
            &[Watts::from_kilowatts(4.0), Watts::from_kilowatts(10.0)],
            &[1, 100],
            LearningCurve::aerospace_default(),
        )
        .unwrap();
        let first_4kw = series[0].points[0].1;
        let hundredth_10kw = series[1].points[1].1;
        assert!(
            hundredth_10kw < first_4kw,
            "100th 10kW {hundredth_10kw} vs 1st 4kW {first_4kw}"
        );
    }

    #[test]
    fn pessimistic_learning_favors_the_monolith() {
        // Paper Fig. 23: "For a pessimistic progress ratio (0.85), a
        // monolithic system minimizes TCO."
        let series = distributed_tco(
            Watts::from_kilowatts(32.0),
            &[1, 2, 3, 4, 6, 8, 12, 16],
            &[0.85],
        )
        .unwrap();
        assert_eq!(series[0].optimal_satellites, 1);
    }

    #[test]
    fn optimistic_learning_favors_distribution_by_over_ten_percent() {
        // Paper Fig. 23: "With an optimistic ratio (<= 0.65 ...), TCO is
        // minimized at greater than 4 SµDCs, and with TCO over 10% below a
        // monolithic system."
        let series = distributed_tco(
            Watts::from_kilowatts(32.0),
            &[1, 2, 3, 4, 6, 8, 12, 16],
            &[0.65],
        )
        .unwrap();
        let s = &series[0];
        assert!(
            s.optimal_satellites > 4,
            "optimal k {}",
            s.optimal_satellites
        );
        let best = s
            .points
            .iter()
            .map(|&(_, t)| t)
            .fold(f64::INFINITY, f64::min);
        assert!(best < 0.90, "best relative TCO {best}");
    }

    #[test]
    fn middling_learning_sits_between() {
        let series = distributed_tco(
            Watts::from_kilowatts(32.0),
            &[1, 2, 3, 4, 6, 8, 12, 16],
            &[0.75],
        )
        .unwrap();
        let s = &series[0];
        assert!(
            s.optimal_satellites >= 2,
            "optimal k {}",
            s.optimal_satellites
        );
    }
}
