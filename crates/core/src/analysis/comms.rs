//! Communication analyses: ISL cost sensitivity (Fig. 7), saturation
//! requirements (Fig. 8), and compression impact (Fig. 10).

use sudc_comms::compression::Compression;
use sudc_comms::requirements::{saturation_rate, DEFAULT_BITS_PER_PIXEL};
use sudc_compute::workloads::{self, Workload};
use sudc_units::{GigabitsPerSecond, Watts};

use crate::design::{DesignError, SuDcDesign};

/// Fig. 7: TCO vs. provisioned ISL capacity, relative to a no-ISL design
/// of the same compute power.
///
/// # Errors
///
/// Propagates [`DesignError`].
pub fn tco_vs_isl(
    compute_power: Watts,
    rates: &[GigabitsPerSecond],
) -> Result<Vec<(GigabitsPerSecond, f64)>, DesignError> {
    let baseline = SuDcDesign::builder()
        .compute_power(compute_power)
        .isl_rate(GigabitsPerSecond::ZERO)
        .build()?
        .tco()?
        .total();
    rates
        .iter()
        .map(|&rate| {
            let tco = SuDcDesign::builder()
                .compute_power(compute_power)
                .isl_rate(rate)
                .build()?
                .tco()?
                .total();
            Ok((rate, tco / baseline))
        })
        .collect()
}

/// One Fig. 8 row: the ISL rate that saturates each power budget for one
/// application.
#[derive(Debug, Clone)]
pub struct SaturationRow {
    /// Application name.
    pub workload: &'static str,
    /// `(compute power, required ISL rate)` points.
    pub requirements: Vec<(Watts, GigabitsPerSecond)>,
}

/// Fig. 8: ISL data rates required to saturate RTX 3090 payloads of the
/// given sizes, per application.
#[must_use]
pub fn isl_saturation_table(powers: &[Watts]) -> Vec<SaturationRow> {
    workloads::suite()
        .iter()
        .map(|w| SaturationRow {
            workload: w.name,
            requirements: powers
                .iter()
                .map(|&p| (p, saturation_rate(p, w.efficiency, DEFAULT_BITS_PER_PIXEL)))
                .collect(),
        })
        .collect()
}

/// Worst-case (most lightweight application) saturation rate for a budget.
#[must_use]
pub fn worst_case_isl(compute_power: Watts) -> GigabitsPerSecond {
    let lightest: Workload = workloads::most_lightweight();
    saturation_rate(compute_power, lightest.efficiency, DEFAULT_BITS_PER_PIXEL)
}

/// Representative-mix (geomean-efficiency) saturation rate for a budget.
#[must_use]
pub fn typical_isl(compute_power: Watts) -> GigabitsPerSecond {
    saturation_rate(
        compute_power,
        crate::design::typical_efficiency(),
        DEFAULT_BITS_PER_PIXEL,
    )
}

/// One Fig. 10 series: TCO vs. compute-energy-efficiency scalar for one
/// compression algorithm, relative to the uncompressed, scalar-1 design.
#[derive(Debug, Clone)]
pub struct CompressionSeries {
    /// Compression algorithm.
    pub compression: Compression,
    /// `(efficiency scalar, relative TCO)` points.
    pub points: Vec<(f64, f64)>,
}

/// Fig. 10: TCO vs. energy efficiency for a SµDC of `baseline_power` under
/// different compression algorithms.
///
/// The workload (pixel throughput) is held constant: an efficiency scalar
/// `s` shrinks compute power to `baseline/s`, while the ISL must still
/// carry the full pixel stream — compressed by the chosen algorithm. As
/// `s → ∞` the ISL dominates TCO, which is where compression's savings
/// saturate (the paper's 11.7 / 20.5 / 26.5 % asymptotes).
///
/// # Errors
///
/// Propagates [`DesignError`].
pub fn compression_impact(
    baseline_power: Watts,
    scalars: &[f64],
) -> Result<Vec<CompressionSeries>, DesignError> {
    let raw_isl = worst_case_isl(baseline_power);
    let baseline = tco_at(baseline_power, 1.0, raw_isl)?;
    Compression::all()
        .into_iter()
        .map(|algo| {
            let points = scalars
                .iter()
                .map(|&s| {
                    let tco = tco_at(baseline_power, s, algo.compressed_rate(raw_isl))?;
                    Ok((s, tco / baseline))
                })
                .collect::<Result<Vec<_>, DesignError>>()?;
            Ok(CompressionSeries {
                compression: algo,
                points,
            })
        })
        .collect()
}

fn tco_at(
    baseline_power: Watts,
    scalar: f64,
    isl: GigabitsPerSecond,
) -> Result<sudc_units::Usd, DesignError> {
    Ok(SuDcDesign::builder()
        .compute_power(baseline_power)
        .efficiency_factor(scalar)
        .isl_rate(isl)
        .build()?
        .tco()?
        .total())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isl_under_25gbps_costs_under_30_percent_at_500w() {
        // Paper: "a 500 W SµDC needs no more than 25 Gbit/s ISL ... which
        // corresponds to a less than 30% increase in TCO".
        let need = worst_case_isl(Watts::new(500.0));
        assert!(need.value() < 25.0);
        let curve = tco_vs_isl(Watts::new(500.0), &[need]).unwrap();
        assert!(curve[0].1 < 1.30, "TCO factor {}", curve[0].1);
        assert!(curve[0].1 > 1.02, "ISL must cost something: {}", curve[0].1);
    }

    #[test]
    fn bigger_sudcs_see_smaller_relative_isl_impact() {
        // Paper: 4 kW and 10 kW both see < 26% increase for worst-case ISLs.
        for kw in [4.0, 10.0] {
            let p = Watts::from_kilowatts(kw);
            let need = worst_case_isl(p);
            let curve = tco_vs_isl(p, &[need]).unwrap();
            assert!(curve[0].1 < 1.26, "{kw} kW: factor {}", curve[0].1);
        }
    }

    #[test]
    fn tco_increases_monotonically_with_isl() {
        let rates: Vec<GigabitsPerSecond> = [0.0, 10.0, 25.0, 50.0, 100.0]
            .iter()
            .map(|&r| GigabitsPerSecond::new(r))
            .collect();
        let curve = tco_vs_isl(Watts::from_kilowatts(4.0), &rates).unwrap();
        for pair in curve.windows(2) {
            assert!(pair[1].1 >= pair[0].1);
        }
    }

    #[test]
    fn saturation_table_covers_all_apps() {
        let table = isl_saturation_table(&[Watts::new(500.0), Watts::from_kilowatts(10.0)]);
        assert_eq!(table.len(), 10);
        for row in &table {
            assert!(
                row.requirements[1].1 > row.requirements[0].1,
                "{}",
                row.workload
            );
        }
    }

    #[test]
    fn compression_saves_a_few_percent_today() {
        // Paper Fig. 10: at today's efficiency (scalar 1), CCSDS < 3%,
        // JPEG2000 ~5%, neural ~8% TCO savings.
        let series = compression_impact(Watts::from_kilowatts(4.0), &[1.0]).unwrap();
        let saving = |algo: Compression| {
            1.0 - series
                .iter()
                .find(|s| s.compression == algo)
                .unwrap()
                .points[0]
                .1
        };
        assert!(saving(Compression::Ccsds121) < 0.05);
        assert!(saving(Compression::Ccsds121) > 0.0);
        assert!(saving(Compression::Jpeg2000Lossless) < 0.09);
        assert!(saving(Compression::NeuralQuasiLossless) < 0.14);
        assert!(saving(Compression::NeuralQuasiLossless) > saving(Compression::Jpeg2000Lossless));
        assert!(saving(Compression::Jpeg2000Lossless) > saving(Compression::Ccsds121));
    }

    #[test]
    fn compression_savings_grow_with_energy_efficiency() {
        // Paper Fig. 10: "asymptotically, the compression algorithms provide
        // 11.7%, 20.5%, and 26.5% decreases in TCO".
        let series = compression_impact(Watts::from_kilowatts(4.0), &[1.0, 1000.0]).unwrap();
        for s in &series {
            if s.compression == Compression::None {
                continue;
            }
            let today = s.points[0].1;
            let future = s.points[1].1;
            let none = series
                .iter()
                .find(|x| x.compression == Compression::None)
                .unwrap();
            let saving_today = 1.0 - today / none.points[0].1;
            let saving_future = 1.0 - future / none.points[1].1;
            assert!(
                saving_future > 1.5 * saving_today,
                "{}: {saving_today} -> {saving_future}",
                s.compression
            );
        }
    }
}
