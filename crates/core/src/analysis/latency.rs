//! Bent-pipe vs. in-space processing latency (paper §I and §IV-A).
//!
//! The paper motivates SµDCs partly by latency: bent-pipe processing waits
//! hours for a downlink window, while in-space processing waits only for an
//! energy-minimizing batch to accumulate (minutes) plus inference time —
//! "this latency is still significantly better than the latency achieved
//! using a traditional bent-pipe downlink model".

use sudc_comms::compression::Compression;
use sudc_compute::gpu::GpuEnergyModel;
use sudc_compute::workloads::Workload;
use sudc_orbital::contact::GroundNetwork;
use sudc_orbital::imaging::Imager;
use sudc_orbital::CircularOrbit;
use sudc_units::{Gigabits, GigabitsPerSecond, Seconds};

/// Latency of the two processing paths for one workload.
#[derive(Debug, Clone)]
pub struct LatencyComparison {
    /// Application evaluated.
    pub workload: &'static str,
    /// Mean bent-pipe latency (`None` when the downlink is in deficit).
    pub bent_pipe: Option<Seconds>,
    /// In-space latency: batch accumulation + inference.
    pub in_space: Seconds,
}

impl LatencyComparison {
    /// Speedup of in-space processing over the bent pipe, if the bent pipe
    /// keeps up at all.
    #[must_use]
    pub fn speedup(&self) -> Option<f64> {
        self.bent_pipe.map(|bp| bp.value() / self.in_space.value())
    }
}

/// Compares bent-pipe and in-space latency for one workload on one EO
/// satellite and ground network.
#[must_use]
pub fn compare_latency(
    workload: &Workload,
    imager: Imager,
    orbit: CircularOrbit,
    network: &GroundNetwork,
) -> LatencyComparison {
    // The bent pipe gets the same courtesies a real system has: the imager
    // duty-cycles (eclipse/ocean) and the downlink is CCSDS-compressed.
    let duty = sudc_constellation::eo::DEFAULT_IMAGING_DUTY_CYCLE;
    let downlink = Compression::Ccsds121;
    let production = downlink.compressed_rate(imager.data_rate(orbit) * duty);
    let image_size = downlink.compressed_volume(Gigabits::new(
        imager.pixels_per_frame() as f64 * f64::from(imager.bits_per_pixel) / 1e9,
    ));
    let bent_pipe = network.mean_latency(production, image_size);

    let model = GpuEnergyModel::fit(workload);
    let batch = model.energy_minimizing_batch(0.05);
    let images_per_minute = imager.frames_per_minute(orbit);
    let accumulation = GpuEnergyModel::batch_accumulation_time(batch, images_per_minute);
    let in_space = accumulation + workload.inference_time;

    LatencyComparison {
        workload: workload.name,
        bent_pipe,
        in_space,
    }
}

/// The full Table III suite compared on the reference orbit/imager against
/// a ground network of `stations` stations.
#[must_use]
pub fn latency_table(stations: u32) -> Vec<LatencyComparison> {
    let network = GroundNetwork::commercial(stations);
    sudc_compute::workloads::suite()
        .iter()
        .map(|w| {
            compare_latency(
                w,
                Imager::reference(),
                CircularOrbit::reference_leo(),
                &network,
            )
        })
        .collect()
}

/// The raw data rate a single reference EO satellite produces (useful for
/// judging the downlink deficit).
#[must_use]
pub fn reference_production_rate() -> GigabitsPerSecond {
    Imager::reference().data_rate(CircularOrbit::reference_leo())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_space_processing_is_minutes_not_hours() {
        for cmp in latency_table(3) {
            let minutes = cmp.in_space.value() / 60.0;
            assert!(
                minutes > 0.3 && minutes < 60.0,
                "{}: in-space latency {minutes} min",
                cmp.workload
            );
        }
    }

    #[test]
    fn bent_pipe_is_much_slower_when_it_works_at_all() {
        for cmp in latency_table(3) {
            match cmp.speedup() {
                Some(s) => assert!(s > 3.0, "{}: speedup only {s}", cmp.workload),
                None => {
                    // Downlink deficit: in-space wins by definition.
                }
            }
        }
    }

    #[test]
    fn dense_ground_networks_narrow_the_gap_but_do_not_close_it() {
        let sparse = latency_table(2);
        let dense = latency_table(16);
        for (s, d) in sparse.iter().zip(&dense) {
            if let (Some(sl), Some(dl)) = (s.bent_pipe, d.bent_pipe) {
                assert!(dl < sl);
                assert!(dl > d.in_space, "{}", d.workload);
            }
        }
    }

    #[test]
    fn production_rate_is_sub_gbps() {
        let r = reference_production_rate().value();
        assert!(r > 0.01 && r < 1.0);
    }
}
