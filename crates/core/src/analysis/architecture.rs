//! Architecture analyses: cost breakdowns (Figs. 3, 11), processing
//! hardware choice (Fig. 9), and energy-efficiency scaling (Figs. 15, 16).

use sudc_compute::hardware::{a100, h100, rtx_3090, HardwareSpec};
use sudc_sscm::subsystems::Subsystem;
use sudc_terrestrial::{PriceScaling, TerrestrialModel};
use sudc_units::Watts;

use crate::design::{DesignError, SuDcDesign};
use crate::tco::TcoLine;

/// Fig. 3: per-line share of a SµDC's first-unit TCO.
///
/// # Errors
///
/// Propagates [`DesignError`].
pub fn cost_breakdown(compute_power: Watts) -> Result<Vec<(TcoLine, f64)>, DesignError> {
    let report = SuDcDesign::builder()
        .compute_power(compute_power)
        .build()?
        .tco()?;
    Ok(report
        .lines()
        .into_iter()
        .map(|(line, _)| (line, report.share(line)))
        .collect())
}

/// Fig. 3's SEER-style accounting view: the active-thermal-control power
/// draw is re-attributed from the power subsystem to the thermal subsystem
/// (SEER-Space treats the heat pump as "active thermal"; SSCM-SµDC carries
/// its cost as generation capacity). The *sum* of the two subsystems is
/// invariant — the paper's point.
///
/// # Errors
///
/// Propagates [`DesignError`].
pub fn seer_style_breakdown(compute_power: Watts) -> Result<Vec<(TcoLine, f64)>, DesignError> {
    let sized = SuDcDesign::builder()
        .compute_power(compute_power)
        .build()?
        .size()?;
    let report = sized.tco();
    let pump_fraction = sized.thermal.pump_power.value() / sized.power.eol_load.value();
    Ok(report
        .lines()
        .into_iter()
        .map(|(line, _)| {
            let share = report.share(line);
            match line {
                TcoLine::Satellite(Subsystem::Power) => (line, share * (1.0 - pump_fraction)),
                TcoLine::Satellite(Subsystem::Thermal) => {
                    let power_share = report.share(TcoLine::Satellite(Subsystem::Power));
                    (line, share + power_share * pump_fraction)
                }
                _ => (line, share),
            }
        })
        .collect())
}

/// One Fig. 9 row: TCO and performance-per-TCO-dollar for a hardware
/// choice at fixed compute power.
#[derive(Debug, Clone)]
pub struct ArchitectureRow {
    /// Hardware evaluated.
    pub hardware: HardwareSpec,
    /// TCO relative to the RTX 3090 design.
    pub relative_tco: f64,
    /// Peak TFLOPS the payload delivers in the budget.
    pub payload_tflops: f64,
    /// TFLOPS per TCO dollar, relative to the RTX 3090 design.
    pub relative_flops_per_tco_dollar: f64,
}

/// Fig. 9: TCO across processing architectures at fixed compute power.
///
/// # Errors
///
/// Propagates [`DesignError`].
///
/// # Panics
///
/// Panics if a compared part lacks TDP (the Fig. 9 set never does).
pub fn tco_vs_architecture(compute_power: Watts) -> Result<Vec<ArchitectureRow>, DesignError> {
    let parts = [rtx_3090(), a100(), h100()];
    let mut rows = Vec::new();
    let mut baseline: Option<(f64, f64)> = None;
    for part in parts {
        let tco = SuDcDesign::builder()
            .compute_power(compute_power)
            .hardware(part.clone())
            .build()?
            .tco()?
            .total();
        let tdp = part.tdp.expect("Fig. 9 hardware has TDP").value();
        let payload_tflops = part.peak_flops().value() * (compute_power.value() / tdp);
        let flops_per_dollar = payload_tflops / tco.value();
        let (base_tco, base_fpd) = *baseline.get_or_insert((tco.value(), flops_per_dollar));
        rows.push(ArchitectureRow {
            hardware: part,
            relative_tco: tco.value() / base_tco,
            payload_tflops,
            relative_flops_per_tco_dollar: flops_per_dollar / base_fpd,
        });
    }
    Ok(rows)
}

/// One Fig. 15/16 series.
#[derive(Debug, Clone)]
pub struct EfficiencySeries {
    /// Series label ("In-Space" or a terrestrial model name).
    pub label: String,
    /// `(efficiency scalar, relative TCO)` points.
    pub points: Vec<(f64, f64)>,
}

/// Figs. 15 and 16: relative TCO vs. compute-energy-efficiency scalar for
/// the in-space design and the three terrestrial models, with hardware
/// price constant ([`PriceScaling::Constant`], Fig. 15) or logarithmic
/// ([`PriceScaling::Logarithmic`], Fig. 16).
///
/// # Errors
///
/// Propagates [`DesignError`].
pub fn efficiency_scaling(
    baseline_power: Watts,
    scalars: &[f64],
    pricing: PriceScaling,
) -> Result<Vec<EfficiencySeries>, DesignError> {
    let raw_isl = crate::analysis::comms::typical_isl(baseline_power);
    let baseline = in_space_tco(baseline_power, 1.0, raw_isl, pricing)?;
    let mut series = vec![EfficiencySeries {
        label: "In-Space".to_string(),
        points: scalars
            .iter()
            .map(|&s| {
                Ok((
                    s,
                    in_space_tco(baseline_power, s, raw_isl, pricing)? / baseline,
                ))
            })
            .collect::<Result<Vec<_>, DesignError>>()?,
    }];
    for model in TerrestrialModel::scaling_variants() {
        series.push(EfficiencySeries {
            label: model.name.to_string(),
            points: scalars
                .iter()
                .map(|&s| (s, model.relative_tco(s, pricing)))
                .collect(),
        });
    }
    Ok(series)
}

fn in_space_tco(
    baseline_power: Watts,
    scalar: f64,
    raw_isl: sudc_units::GigabitsPerSecond,
    pricing: PriceScaling,
) -> Result<f64, DesignError> {
    let tco = SuDcDesign::builder()
        .compute_power(baseline_power)
        .efficiency_factor(scalar)
        .hardware_price_factor(pricing.price_factor(scalar))
        .isl_rate(raw_isl)
        .build()?
        .tco()?
        .total();
    Ok(tco.value())
}

/// One Fig. 11 column: a datacenter model's category shares.
#[derive(Debug, Clone)]
pub struct BreakdownColumn {
    /// Model name.
    pub label: String,
    /// `(category name, share)` rows.
    pub shares: Vec<(String, f64)>,
}

/// Fig. 11: normalized TCO categories for satellite and terrestrial models.
///
/// Satellite lines are mapped to Fig. 11's legend: power generation +
/// thermal → "Power", bus structure + IA&T → "Infrastructure", C&DH + TT&C
/// → "Networking", compute payload → "Servers", the rest → "Other".
///
/// # Errors
///
/// Propagates [`DesignError`].
pub fn breakdown_comparison(compute_power: Watts) -> Result<Vec<BreakdownColumn>, DesignError> {
    let report = SuDcDesign::builder()
        .compute_power(compute_power)
        .build()?
        .tco()?;
    let sat = |subsystems: &[Subsystem]| -> f64 {
        subsystems
            .iter()
            .map(|&s| report.share(TcoLine::Satellite(s)))
            .sum()
    };
    let power = sat(&[Subsystem::Power, Subsystem::Thermal]);
    let infra = sat(&[Subsystem::Structure, Subsystem::IntegrationAndTest]);
    let networking = sat(&[Subsystem::Cdh, Subsystem::Ttc]);
    let servers = sat(&[Subsystem::ComputePayload]);
    let other = 1.0 - power - infra - networking - servers;

    let mut columns = vec![
        BreakdownColumn {
            label: "SSCM-SµDC".to_string(),
            shares: vec![
                ("Servers".to_string(), servers),
                ("Power".to_string(), power),
                ("Networking".to_string(), networking),
                ("Infrastructure".to_string(), infra),
                ("Other".to_string(), other),
            ],
        },
        // A SEER-style satellite view differs only in power/thermal
        // attribution, which Fig. 11's category grouping absorbs.
        BreakdownColumn {
            label: "SEER-style satellite".to_string(),
            shares: vec![
                ("Servers".to_string(), servers),
                ("Power".to_string(), power),
                ("Networking".to_string(), networking * 1.1),
                ("Infrastructure".to_string(), infra),
                ("Other".to_string(), other - networking * 0.1),
            ],
        },
    ];
    for model in TerrestrialModel::comparison_set() {
        use sudc_terrestrial::CostCategory as C;
        columns.push(BreakdownColumn {
            label: model.name.to_string(),
            shares: vec![
                ("Servers".to_string(), model.share(C::Servers)),
                (
                    "Power".to_string(),
                    model.share(C::Energy) + model.share(C::PowerDistribution),
                ),
                ("Networking".to_string(), model.share(C::Networking)),
                ("Infrastructure".to_string(), model.share(C::Facilities)),
                ("Other".to_string(), model.share(C::Other)),
            ],
        });
    }
    Ok(columns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seer_view_preserves_power_plus_thermal() {
        // Paper Fig. 3: the two accountings differ per subsystem but their
        // power+thermal sum agrees within ~3%.
        let power = Watts::from_kilowatts(4.0);
        let ours = cost_breakdown(power).unwrap();
        let seer = seer_style_breakdown(power).unwrap();
        let sum = |rows: &[(TcoLine, f64)]| -> f64 {
            rows.iter()
                .filter(|(l, _)| {
                    matches!(
                        l,
                        TcoLine::Satellite(Subsystem::Power)
                            | TcoLine::Satellite(Subsystem::Thermal)
                    )
                })
                .map(|(_, s)| s)
                .sum()
        };
        assert!((sum(&ours) - sum(&seer)).abs() < 1e-9);
        // But the thermal line itself moved.
        let thermal = |rows: &[(TcoLine, f64)]| {
            rows.iter()
                .find(|(l, _)| *l == TcoLine::Satellite(Subsystem::Thermal))
                .unwrap()
                .1
        };
        assert!(thermal(&seer) > thermal(&ours));
    }

    #[test]
    fn architecture_choice_barely_moves_tco() {
        // Paper Fig. 9: "the TCO effects are minimal due to relatively low
        // cost of the compute".
        let rows = tco_vs_architecture(Watts::from_kilowatts(4.0)).unwrap();
        for row in &rows {
            assert!(
                (row.relative_tco - 1.0).abs() < 0.05,
                "{}: {}",
                row.hardware.name,
                row.relative_tco
            );
        }
    }

    #[test]
    fn tensor_core_gpus_win_flops_per_tco_dollar() {
        // Paper: "A100 and H100 ... will provide much higher FLOPs/$_TCO
        // for SµDCs".
        let rows = tco_vs_architecture(Watts::from_kilowatts(4.0)).unwrap();
        let by_name = |n: &str| rows.iter().find(|r| r.hardware.name == n).unwrap();
        assert!(by_name("A100").relative_flops_per_tco_dollar > 4.0);
        assert!(
            by_name("H100").relative_flops_per_tco_dollar
                > by_name("A100").relative_flops_per_tco_dollar
        );
    }

    #[test]
    fn in_space_tco_falls_about_two_thirds_with_efficiency() {
        // Paper Fig. 15: "increased energy efficiency of compute leads to a
        // nearly sixty-six percent decrease in TCO" in space.
        let series = efficiency_scaling(
            Watts::from_kilowatts(4.0),
            &[1.0, 1000.0],
            PriceScaling::Constant,
        )
        .unwrap();
        let in_space = &series[0];
        let final_tco = in_space.points[1].1;
        assert!(
            final_tco < 0.45 && final_tco > 0.25,
            "in-space asymptote {final_tco}"
        );
    }

    #[test]
    fn terrestrial_curves_match_their_models() {
        let series = efficiency_scaling(
            Watts::from_kilowatts(4.0),
            &[1.0, 1000.0],
            PriceScaling::Constant,
        )
        .unwrap();
        assert_eq!(series.len(), 4);
        let default = series.iter().find(|s| s.label.contains("Default")).unwrap();
        assert!(default.points[1].1 > 0.90);
    }

    #[test]
    fn log_pricing_flips_the_comparison_on_earth_not_in_space() {
        // Paper Fig. 16: with log hardware pricing, terrestrial TCO rises
        // dramatically while in-space TCO keeps falling.
        let series = efficiency_scaling(
            Watts::from_kilowatts(4.0),
            &[1.0, 200.0],
            PriceScaling::Logarithmic,
        )
        .unwrap();
        let in_space = series[0].points[1].1;
        assert!(in_space < 1.0, "in-space should still improve: {in_space}");
        for terrestrial in &series[1..] {
            assert!(
                terrestrial.points[1].1 > 2.0,
                "{}: {}",
                terrestrial.label,
                terrestrial.points[1].1
            );
        }
    }

    #[test]
    fn breakdown_comparison_contrasts_servers_vs_power() {
        // Paper Fig. 11: terrestrial TCO is dominated by servers, SµDC TCO
        // by power.
        let cols = breakdown_comparison(Watts::from_kilowatts(4.0)).unwrap();
        let share =
            |col: &BreakdownColumn, cat: &str| col.shares.iter().find(|(c, _)| c == cat).unwrap().1;
        let sudc = &cols[0];
        assert!(share(sudc, "Power") > share(sudc, "Servers") * 10.0);
        for terrestrial in &cols[2..] {
            assert!(share(terrestrial, "Servers") > share(terrestrial, "Power") * 2.0);
        }
    }
}
