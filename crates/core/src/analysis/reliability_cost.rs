//! Redundancy-scheme TCO comparison (paper §VIII, Fig. 28).

use sudc_reliability::RedundancyScheme;
use sudc_units::Watts;

use crate::design::{DesignError, SuDcDesign};

/// One Fig. 28 group: relative TCO of each scheme at one equivalent power.
#[derive(Debug, Clone)]
pub struct RedundancyGroup {
    /// Equivalent (protected) computing power.
    pub equivalent_power: Watts,
    /// `(scheme, TCO relative to the unprotected design at this power)`.
    pub rows: Vec<(RedundancyScheme, f64)>,
}

/// Fig. 28: relative TCO for TMR / DMR / software redundancy at several
/// equivalent computing powers.
///
/// # Errors
///
/// Propagates [`DesignError`].
pub fn redundancy_tco(equivalents: &[Watts]) -> Result<Vec<RedundancyGroup>, DesignError> {
    equivalents
        .iter()
        .map(|&power| {
            let baseline = SuDcDesign::builder()
                .compute_power(power)
                .build()?
                .tco()?
                .total();
            let rows = RedundancyScheme::all()
                .into_iter()
                .map(|scheme| {
                    let tco = SuDcDesign::builder()
                        .compute_power(power)
                        .redundancy(scheme)
                        .build()?
                        .tco()?
                        .total();
                    Ok((scheme, tco / baseline))
                })
                .collect::<Result<Vec<_>, DesignError>>()?;
            Ok(RedundancyGroup {
                equivalent_power: power,
                rows,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group_at(kw: f64) -> RedundancyGroup {
        redundancy_tco(&[Watts::from_kilowatts(kw)])
            .unwrap()
            .remove(0)
    }

    fn relative(group: &RedundancyGroup, scheme: RedundancyScheme) -> f64 {
        group
            .rows
            .iter()
            .find(|(s, _)| *s == scheme)
            .map(|(_, t)| *t)
            .unwrap()
    }

    #[test]
    fn hardware_redundancy_is_expensive() {
        // Paper: "impact of hardware redundancy-based solutions on SµDC TCO
        // can be high (again due to the impact also on power generation and
        // thermal subsystems)".
        let g = group_at(2.0);
        assert!(relative(&g, RedundancyScheme::Tmr) > 1.4);
        assert!(relative(&g, RedundancyScheme::Dmr) > 1.2);
        assert!(relative(&g, RedundancyScheme::Tmr) > relative(&g, RedundancyScheme::Dmr));
    }

    #[test]
    fn software_redundancy_is_cheap() {
        // Paper: "Software-based reliability solutions have small cost in
        // terms of TCO."
        let g = group_at(2.0);
        let sw = relative(&g, RedundancyScheme::Software);
        assert!(sw < 1.12, "software overhead TCO factor {sw}");
        assert!(sw > 1.0);
    }

    #[test]
    fn baseline_scheme_is_identity() {
        let g = group_at(1.0);
        assert!((relative(&g, RedundancyScheme::None) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ordering_holds_across_the_power_range() {
        // Fig. 28 spans 0.5 - 4 kW equivalent computing power.
        for kw in [0.5, 1.0, 2.0, 4.0] {
            let g = group_at(kw);
            let none = relative(&g, RedundancyScheme::None);
            let sw = relative(&g, RedundancyScheme::Software);
            let dmr = relative(&g, RedundancyScheme::Dmr);
            let tmr = relative(&g, RedundancyScheme::Tmr);
            assert!(none < sw && sw < dmr && dmr < tmr, "at {kw} kW");
        }
    }
}
