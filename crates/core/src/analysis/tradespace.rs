//! Two-dimensional trade-space exploration and Pareto fronts.
//!
//! The paper's architectural argument is ultimately a trade: for a target
//! workload throughput, what combination of compute power and payload
//! architecture minimizes TCO? This module sweeps that plane and extracts
//! the Pareto-efficient designs, making "extreme heterogeneity wins"
//! checkable rather than narrative.

use sudc_units::{Usd, Watts};

use crate::design::{DesignError, SuDcDesign};

/// One evaluated design point.
#[derive(Debug, Clone)]
pub struct TradePoint {
    /// Architecture label.
    pub architecture: String,
    /// Payload energy-efficiency factor over the GPU baseline.
    pub efficiency_factor: f64,
    /// Hardware price factor applied.
    pub price_factor: f64,
    /// Equivalent compute power (GPU-baseline-normalized throughput).
    pub equivalent_power: Watts,
    /// First-unit TCO.
    pub tco: Usd,
    /// Throughput per TCO dollar: equivalent watts per million dollars.
    pub watts_per_musd: f64,
}

/// Sweeps `(equivalent power) × (architecture)` and returns every point.
///
/// `architectures` supplies `(label, efficiency factor, price factor)`.
///
/// # Errors
///
/// Propagates [`DesignError`].
pub fn sweep(
    powers: &[Watts],
    architectures: &[(&str, f64, f64)],
) -> Result<Vec<TradePoint>, DesignError> {
    // Every grid point is an independent sizing: flatten and fan out on the
    // workspace executor, preserving (architecture, power) iteration order.
    let grid: Vec<(&str, f64, f64, Watts)> = architectures
        .iter()
        .flat_map(|&(label, eff, price)| powers.iter().map(move |&p| (label, eff, price, p)))
        .collect();
    sudc_par::par_try_map(&grid, |_, &(label, eff, price, power)| {
        let tco = SuDcDesign::builder()
            .compute_power(power)
            .efficiency_factor(eff)
            .hardware_price_factor(price)
            .isl_typical()
            .build()?
            .tco()?
            .total();
        Ok(TradePoint {
            architecture: label.to_string(),
            efficiency_factor: eff,
            price_factor: price,
            equivalent_power: power,
            tco,
            watts_per_musd: power.value() / tco.as_millions(),
        })
    })
}

/// Extracts the Pareto front: points not dominated in
/// (higher equivalent power, lower TCO).
#[must_use]
pub fn pareto_front(points: &[TradePoint]) -> Vec<&TradePoint> {
    let mut front: Vec<&TradePoint> = Vec::new();
    for candidate in points {
        let dominated = points.iter().any(|other| {
            other.equivalent_power >= candidate.equivalent_power && other.tco < candidate.tco
        });
        if !dominated {
            front.push(candidate);
        }
    }
    front.sort_by(|a, b| {
        a.equivalent_power
            .partial_cmp(&b.equivalent_power)
            .expect("finite powers")
    });
    front
}

/// The paper's three architectures with Fig. 17-class efficiency factors
/// and a 3× accelerator price premium.
#[must_use]
pub fn paper_architectures() -> [(&'static str, f64, f64); 3] {
    [
        ("Commodity GPU", 1.0, 1.0),
        ("Global accelerator", 57.8, 3.0),
        ("Per-layer accelerator", 116.0, 3.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points() -> Vec<TradePoint> {
        let powers: Vec<Watts> = [0.5, 1.0, 2.0, 4.0, 8.0]
            .iter()
            .map(|&k| Watts::from_kilowatts(k))
            .collect();
        sweep(&powers, &paper_architectures()).unwrap()
    }

    #[test]
    fn accelerators_dominate_the_pareto_front() {
        let pts = points();
        let front = pareto_front(&pts);
        assert!(!front.is_empty());
        // Every front point at >= 1 kW equivalent power is an accelerator.
        for p in &front {
            if p.equivalent_power.value() >= 1000.0 {
                assert_ne!(
                    p.architecture, "Commodity GPU",
                    "GPU on the front at {}",
                    p.equivalent_power
                );
            }
        }
    }

    #[test]
    fn throughput_per_dollar_favors_heterogeneity() {
        let pts = points();
        let best_gpu = pts
            .iter()
            .filter(|p| p.architecture == "Commodity GPU")
            .map(|p| p.watts_per_musd)
            .fold(f64::NEG_INFINITY, f64::max);
        let best_hetero = pts
            .iter()
            .filter(|p| p.architecture == "Per-layer accelerator")
            .map(|p| p.watts_per_musd)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            best_hetero > 1.8 * best_gpu,
            "hetero {best_hetero} vs gpu {best_gpu}"
        );
    }

    #[test]
    fn front_is_sorted_and_undominated() {
        let pts = points();
        let front = pareto_front(&pts);
        for pair in front.windows(2) {
            assert!(pair[0].equivalent_power <= pair[1].equivalent_power);
            assert!(pair[0].tco <= pair[1].tco);
        }
    }

    #[test]
    fn sweep_covers_the_full_grid() {
        assert_eq!(points().len(), 15);
    }
}
