//! Design-choice ablations.
//!
//! `DESIGN.md` calls out the design decisions baked into the pipeline; this
//! module sweeps each one so its TCO impact is measurable:
//!
//! - radiator temperature setpoint (area vs. pump-power trade),
//! - launch pricing era,
//! - FSO power-efficiency improvements (Space-BACN-class terminals),
//! - solar-cell technology.

use sudc_comms::cdh::CdhDesign;
use sudc_orbital::launch::LaunchPricing;
use sudc_power::{PowerDesign, SolarCellTech};
use sudc_thermal::{HeatPump, ThermalDesign};
use sudc_units::{Kelvin, Usd, Watts};

use crate::design::{DesignError, SuDcDesign};

/// One radiator-setpoint ablation point.
#[derive(Debug, Clone)]
pub struct SetpointPoint {
    /// Radiator temperature.
    pub temperature: Kelvin,
    /// Radiator panel area.
    pub radiator_area_m2: f64,
    /// Heat-pump electrical power.
    pub pump_power: Watts,
    /// Total electrical load the power subsystem must carry.
    pub eol_load: Watts,
}

/// Sweeps the radiator setpoint for a fixed heat load, exposing the
/// area-vs-pump-power trade behind the default 45 °C choice.
///
/// # Panics
///
/// Panics if `setpoints` is empty.
#[must_use]
pub fn radiator_setpoint_sweep(heat_load: Watts, setpoints: &[Kelvin]) -> Vec<SetpointPoint> {
    assert!(!setpoints.is_empty(), "no setpoints supplied");
    setpoints
        .iter()
        .map(|&t| {
            let design = ThermalDesign::size(heat_load, t, HeatPump::spacecraft_default());
            SetpointPoint {
                temperature: t,
                radiator_area_m2: design.radiator_area().value(),
                pump_power: design.pump_power,
                eol_load: heat_load + design.pump_power,
            }
        })
        .collect()
}

/// TCO under different launch-pricing eras.
///
/// # Errors
///
/// Propagates [`DesignError`].
pub fn launch_pricing_ablation(
    compute_power: Watts,
) -> Result<Vec<(&'static str, Usd)>, DesignError> {
    let eras = [
        ("Falcon-9 rideshare", LaunchPricing::falcon9_rideshare()),
        ("next-gen heavy lift", LaunchPricing::next_gen_heavy()),
    ];
    eras.into_iter()
        .map(|(name, pricing)| {
            let tco = SuDcDesign::builder()
                .compute_power(compute_power)
                .launch(pricing)
                .build()?
                .tco()?
                .total();
            Ok((name, tco))
        })
        .collect()
}

/// TCO vs. FSO power-efficiency scalar (Space-BACN-class improvements),
/// relative to today's terminals.
///
/// # Errors
///
/// Propagates [`DesignError`].
pub fn fso_efficiency_ablation(
    compute_power: Watts,
    scalars: &[f64],
) -> Result<Vec<(f64, f64)>, DesignError> {
    let baseline = SuDcDesign::builder()
        .compute_power(compute_power)
        .build()?
        .tco()?
        .total();
    scalars
        .iter()
        .map(|&s| {
            let tco = SuDcDesign::builder()
                .compute_power(compute_power)
                .fso_efficiency_scalar(s)
                .build()?
                .tco()?
                .total();
            Ok((s, tco / baseline))
        })
        .collect()
}

/// Power-subsystem mass under the two solar-cell technologies, exposing
/// the GaAs-vs-silicon default.
#[must_use]
pub fn solar_tech_ablation(eol_load: Watts) -> Vec<(&'static str, f64)> {
    use sudc_orbital::CircularOrbit;
    use sudc_units::Years;
    [
        ("triple-junction GaAs", SolarCellTech::TripleJunctionGaAs),
        ("silicon", SolarCellTech::Silicon),
    ]
    .into_iter()
    .map(|(name, tech)| {
        let design = PowerDesign::size(
            eol_load,
            CircularOrbit::reference_leo(),
            Years::new(5.0),
            tech,
        );
        (name, design.mass().value())
    })
    .collect()
}

/// The C&DH power consumed at an ISL rate, today vs. a Space-BACN-class
/// future (a direct view of where the FSO ablation's savings come from).
#[must_use]
pub fn cdh_power_comparison(isl_gbps: f64) -> (Watts, Watts) {
    let rate = sudc_units::GigabitsPerSecond::new(isl_gbps);
    let today = CdhDesign::size(rate);
    let future = CdhDesign::size_with_fso_efficiency(rate, 10.0);
    (today.power(), future.power())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotter_setpoints_shrink_the_radiator_but_burn_pump_power() {
        let points = radiator_setpoint_sweep(
            Watts::from_kilowatts(4.0),
            &[
                Kelvin::from_celsius(25.0),
                Kelvin::from_celsius(45.0),
                Kelvin::from_celsius(70.0),
            ],
        );
        assert!(points[2].radiator_area_m2 < points[0].radiator_area_m2);
        assert!(points[2].pump_power > points[0].pump_power);
    }

    #[test]
    fn setpoint_trade_has_an_interior_optimum_in_eol_load_plus_area() {
        // Composite figure of merit: power subsystem sized by eol_load and
        // radiator mass by area; the default 45 C sits near the knee.
        let temps: Vec<Kelvin> = (15..=95)
            .step_by(10)
            .map(|c| Kelvin::from_celsius(f64::from(c)))
            .collect();
        let points = radiator_setpoint_sweep(Watts::from_kilowatts(4.0), &temps);
        // EOL load strictly grows with setpoint; area strictly falls.
        for pair in points.windows(2) {
            assert!(pair[1].eol_load > pair[0].eol_load);
            assert!(pair[1].radiator_area_m2 < pair[0].radiator_area_m2);
        }
    }

    #[test]
    fn cheaper_launch_cuts_tco() {
        let rows = launch_pricing_ablation(Watts::from_kilowatts(4.0)).unwrap();
        assert!(rows[1].1 < rows[0].1, "next-gen should be cheaper");
    }

    #[test]
    fn fso_improvements_reduce_tco_monotonically() {
        let curve =
            fso_efficiency_ablation(Watts::from_kilowatts(4.0), &[1.0, 2.0, 5.0, 10.0]).unwrap();
        for pair in curve.windows(2) {
            assert!(pair[1].1 <= pair[0].1);
        }
        assert!(
            curve.last().unwrap().1 < 0.99,
            "10x FSO must save something"
        );
    }

    #[test]
    fn gaas_arrays_are_lighter() {
        let rows = solar_tech_ablation(Watts::from_kilowatts(4.0));
        assert!(rows[0].1 < rows[1].1);
    }

    #[test]
    fn future_fso_cuts_cdh_power() {
        let (today, future) = cdh_power_comparison(100.0);
        assert!(future < today);
    }
}
