//! TCO and mass sweeps over lifetime and compute power (Figs. 4, 5, 6).
//!
//! Each sweep point is an independent design sizing, so the grids run on
//! the workspace executor ([`sudc_par`]); results keep input order and are
//! identical at every thread count.

use sudc_units::{Watts, Years};

use crate::analysis::default_tco;
use crate::design::{DesignError, SuDcDesign};
use crate::tco::TcoLine;

/// One lifetime series (Fig. 4): a SµDC size swept over lifetimes, with
/// TCO relative to the global baseline (first power, first lifetime).
#[derive(Debug, Clone)]
pub struct LifetimeSeries {
    /// Compute power of this series.
    pub power: Watts,
    /// `(lifetime, TCO / baseline TCO)` points.
    pub points: Vec<(Years, f64)>,
}

/// Fig. 4: TCO vs. lifetime for the given SµDC sizes, normalized to the
/// first size at the first lifetime.
///
/// # Errors
///
/// Propagates [`DesignError`].
///
/// # Panics
///
/// Panics if `powers` or `lifetimes` is empty.
pub fn tco_vs_lifetime(
    powers: &[Watts],
    lifetimes: &[Years],
) -> Result<Vec<LifetimeSeries>, DesignError> {
    assert!(!powers.is_empty() && !lifetimes.is_empty(), "empty sweep");
    let baseline = SuDcDesign::builder()
        .compute_power(powers[0])
        .lifetime(lifetimes[0])
        .build()?
        .tco()?
        .total();
    // Flatten the (power × lifetime) grid, size every design in parallel,
    // then regroup into one series per power.
    let grid: Vec<(Watts, Years)> = powers
        .iter()
        .flat_map(|&p| lifetimes.iter().map(move |&l| (p, l)))
        .collect();
    let ratios = sudc_par::par_try_map(&grid, |_, &(p, l)| {
        let tco = SuDcDesign::builder()
            .compute_power(p)
            .lifetime(l)
            .build()?
            .tco()?
            .total();
        Ok::<f64, DesignError>(tco / baseline)
    })?;
    Ok(powers
        .iter()
        .zip(ratios.chunks(lifetimes.len()))
        .map(|(&p, chunk)| LifetimeSeries {
            power: p,
            points: lifetimes
                .iter()
                .copied()
                .zip(chunk.iter().copied())
                .collect(),
        })
        .collect())
}

/// One point of the Fig. 5 power sweep.
#[derive(Debug, Clone)]
pub struct PowerPoint {
    /// Compute power.
    pub power: Watts,
    /// Total TCO relative to the first swept power.
    pub relative_tco: f64,
    /// Per-line TCO relative to the first swept power's *total*.
    pub breakdown: Vec<(TcoLine, f64)>,
}

/// Fig. 5: TCO (total and per subsystem) vs. compute power, normalized to
/// the total cost of the first power in the sweep.
///
/// # Errors
///
/// Propagates [`DesignError`].
///
/// # Panics
///
/// Panics if `powers` is empty.
pub fn tco_vs_power(powers: &[Watts]) -> Result<Vec<PowerPoint>, DesignError> {
    assert!(!powers.is_empty(), "empty sweep");
    let baseline = default_tco(powers[0])?.total();
    sudc_par::par_try_map(powers, |_, &p| {
        let report = default_tco(p)?;
        let breakdown = report
            .lines()
            .into_iter()
            .map(|(line, cost)| (line, cost / baseline))
            .collect();
        Ok(PowerPoint {
            power: p,
            relative_tco: report.total() / baseline,
            breakdown,
        })
    })
}

/// One point of the Fig. 6 mass sweep.
#[derive(Debug, Clone)]
pub struct MassPoint {
    /// Compute power.
    pub power: Watts,
    /// Wet mass relative to the first swept power.
    pub relative_mass: f64,
    /// Compute payload's share of wet mass.
    pub payload_mass_share: f64,
}

/// Fig. 6: satellite mass vs. compute power, normalized to the first power.
///
/// # Errors
///
/// Propagates [`DesignError`].
///
/// # Panics
///
/// Panics if `powers` is empty.
pub fn mass_vs_power(powers: &[Watts]) -> Result<Vec<MassPoint>, DesignError> {
    assert!(!powers.is_empty(), "empty sweep");
    let baseline = SuDcDesign::builder()
        .compute_power(powers[0])
        .build()?
        .size()?
        .wet_mass();
    sudc_par::par_try_map(powers, |_, &p| {
        let sized = SuDcDesign::builder().compute_power(p).build()?.size()?;
        Ok(MassPoint {
            power: p,
            relative_mass: sized.wet_mass() / baseline,
            payload_mass_share: sized.payload_mass / sized.wet_mass(),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::reference_powers;
    use sudc_sscm::subsystems::Subsystem;

    #[test]
    fn tco_grows_sublinearly_with_power() {
        // Paper Fig. 5: "A 20x increase in power corresponds with < 4x
        // increase in total cost" (and over 3x from 0.5 to 10 kW).
        let points = tco_vs_power(&[Watts::new(500.0), Watts::from_kilowatts(10.0)]).unwrap();
        let ratio = points[1].relative_tco;
        assert!(ratio < 4.0, "20x power gave {ratio}x TCO");
        assert!(ratio > 2.0, "power must still matter, got {ratio}x");
    }

    #[test]
    fn compute_hardware_is_under_one_percent_of_tco() {
        // Paper: "the computer hardware cost of a SµDC is < 1% of TCO".
        for p in reference_powers() {
            let report = default_tco(p).unwrap();
            let share = report.share(TcoLine::Satellite(Subsystem::ComputePayload));
            assert!(share < 0.01, "{p}: payload share {share}");
        }
    }

    #[test]
    fn power_and_thermal_are_over_a_third_of_tco_at_4kw() {
        // Paper Fig. 3: power + thermal ~ 34% of cost.
        let report = default_tco(Watts::from_kilowatts(4.0)).unwrap();
        let share = report.power_and_thermal_share();
        assert!(share > 0.28 && share < 0.45, "power+thermal {share}");
    }

    #[test]
    fn tco_grows_superlinearly_with_long_lifetimes() {
        // Paper Fig. 4: "For long lifetime missions, the cost grows
        // superlinearly" - the increment from year 5 to 9 exceeds the
        // increment from year 1 to 5.
        let series = tco_vs_lifetime(
            &[Watts::from_kilowatts(4.0)],
            &[Years::new(1.0), Years::new(5.0), Years::new(9.0)],
        )
        .unwrap();
        let pts = &series[0].points;
        let d_early = pts[1].1 - pts[0].1;
        let d_late = pts[2].1 - pts[1].1;
        assert!(
            d_late > d_early,
            "lifetime growth must accelerate: {d_early} vs {d_late}"
        );
    }

    #[test]
    fn bigger_sudcs_cost_more_at_every_lifetime() {
        let series = tco_vs_lifetime(
            &[Watts::new(500.0), Watts::from_kilowatts(4.0)],
            &[Years::new(1.0), Years::new(5.0)],
        )
        .unwrap();
        for (small, big) in series[0].points.iter().zip(&series[1].points) {
            assert!(big.1 > small.1);
        }
    }

    #[test]
    fn mass_grows_sublinearly_and_payload_stays_small() {
        // Paper Fig. 6: total mass scales slowly with compute power and
        // compute is a few percent of total mass.
        let points = mass_vs_power(&reference_powers()).unwrap();
        let ratio_20x = points[2].relative_mass;
        assert!(ratio_20x < 15.0, "20x power gave {ratio_20x}x mass");
        for p in &points {
            assert!(
                p.payload_mass_share < 0.25,
                "payload mass share {}",
                p.payload_mass_share
            );
        }
    }

    #[test]
    fn breakdown_sums_to_total() {
        let points = tco_vs_power(&reference_powers()).unwrap();
        for p in &points {
            let sum: f64 = p.breakdown.iter().map(|(_, v)| v).sum();
            assert!((sum - p.relative_tco).abs() < 1e-9);
        }
    }
}
