use sudc_core::design::SuDcDesign;
use sudc_units::{Watts, Years};

#[test]
#[ignore]
fn calibration_print() {
    for kw in [0.5, 4.0, 10.0] {
        let d = SuDcDesign::builder()
            .compute_power(Watts::from_kilowatts(kw))
            .build()
            .unwrap();
        let s = d.size().unwrap();
        let r = s.tco();
        println!("--- {kw} kW ---");
        println!("isl {:.1}, eol {:.0} W, bol {:.0} W, dry {:.0} kg, fuel {:.1} kg, payload {:.0} kg / {:.2} $M",
            s.isl_rate.value(), s.power.eol_load.value(), s.power.bol_array_power().value(),
            s.dry_mass.value(), s.fuel_mass.value(), s.payload_mass.value(), s.payload_price.as_millions());
        println!(
            "TCO {:.1} $M  (nre {:.1}, launch {:.1}, ops {:.1})",
            r.total().as_millions(),
            r.nre().as_millions(),
            r.launch_cost().as_millions(),
            r.operations_cost().as_millions()
        );
        for (line, cost) in r.lines() {
            println!(
                "  {:20} {:7.2} $M  {:5.1}%",
                line.to_string(),
                cost.as_millions(),
                100.0 * r.share(line)
            );
        }
    }
    for yr in [1.0, 5.0, 9.0] {
        let r = SuDcDesign::builder()
            .compute_power(Watts::from_kilowatts(4.0))
            .lifetime(Years::new(yr))
            .build()
            .unwrap()
            .tco()
            .unwrap();
        println!("lifetime {yr}: {:.1} $M", r.total().as_millions());
    }
}

#[test]
#[ignore]
fn calibration_print2() {
    use sudc_core::analysis::{architecture, fleet};
    use sudc_terrestrial::PriceScaling;
    let s = architecture::efficiency_scaling(
        Watts::from_kilowatts(4.0),
        &[1.0, 10.0, 100.0, 1000.0],
        PriceScaling::Constant,
    )
    .unwrap();
    for series in &s {
        println!(
            "{}: {:?}",
            series.label,
            series
                .points
                .iter()
                .map(|p| (p.0, (p.1 * 1000.0).round() / 1000.0))
                .collect::<Vec<_>>()
        );
    }
    for b in [0.65, 0.75, 0.85] {
        let d = fleet::distributed_tco(
            Watts::from_kilowatts(32.0),
            &[1, 2, 3, 4, 6, 8, 12, 16],
            &[b],
        )
        .unwrap();
        println!(
            "b={b}: optimal={} points={:?}",
            d[0].optimal_satellites,
            d[0].points
                .iter()
                .map(|p| (p.0, (p.1 * 100.0).round() / 100.0))
                .collect::<Vec<_>>()
        );
    }
}

#[test]
#[ignore]
fn calibration_print3() {
    let base = SuDcDesign::builder()
        .compute_power(Watts::from_kilowatts(4.0))
        .build()
        .unwrap();
    let spared = SuDcDesign::builder()
        .compute_power(Watts::from_kilowatts(4.0))
        .spares(20)
        .build()
        .unwrap();
    let (b, s) = (base.size().unwrap(), spared.size().unwrap());
    println!("payload mass {} -> {}", b.payload_mass, s.payload_mass);
    println!("payload price {} -> {}", b.payload_price, s.payload_price);
    println!("dry {} -> {}", b.dry_mass, s.dry_mass);
    println!(
        "tco {} -> {} (ratio {})",
        b.tco().total().as_millions(),
        s.tco().total().as_millions(),
        s.tco().total() / b.tco().total()
    );
}
