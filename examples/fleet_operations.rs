//! Fleet operations: pack the full concurrent application suite onto a
//! SµDC fleet, size the insight downlink, and project fleet availability
//! over the mission.
//!
//! ```text
//! cargo run --release --example fleet_operations
//! ```

use space_udc::comms::downlink::{InsightDownlink, InsightKind};
use space_udc::compute::workloads;
use space_udc::constellation::packing::pack_fleet;
use space_udc::constellation::EoConstellation;
use space_udc::reliability::availability::DEFAULT_MC_SEED;
use space_udc::reliability::mission::{simulate, MissionConfig, SparingPolicy};
use space_udc::units::Watts;

fn main() {
    let constellation = EoConstellation::reference(64);
    let suite = workloads::suite();

    println!("== Packing the concurrent 10-application suite (4 kW SµDCs) ==");
    let packing = pack_fleet(&constellation, &suite, Watts::from_kilowatts(4.0));
    println!(
        "  fleet size: {} SµDCs at {:.0}% utilization",
        packing.sudcs,
        100.0 * packing.utilization()
    );
    for p in &packing.placements {
        println!(
            "  {:26} {:7.2} kW across SµDC(s) {:?}",
            p.workload,
            p.demand.as_kilowatts(),
            p.bins
        );
    }

    println!("\n== Insight downlink after in-space processing ==");
    let processed = constellation.pixel_rate();
    let products = [
        ("classification labels", InsightKind::Labels, 0.2),
        ("detections", InsightKind::Detections, 0.3),
        ("segmentation masks", InsightKind::Masks, 0.15),
    ];
    for (name, kind, fraction) in products {
        let d = InsightDownlink::new(kind, fraction);
        println!(
            "  {:24} {:9.4} Gbit/s  ({:>10.0}x less than raw)",
            name,
            d.required_rate(processed).value(),
            d.reduction_vs_raw()
        );
    }
    println!(
        "  (raw constellation output: {:.1} Gbit/s)",
        constellation.data_rate().value()
    );

    println!("\n== Fleet availability over a 5-year mission (cold spares) ==");
    for spares in [0u32, 5, 10, 20] {
        let outcome = simulate(
            MissionConfig {
                nodes: 10 + spares,
                required: 10,
                duration: 0.5, // 5 years at a 10-year server MTTF
                policy: SparingPolicy::Cold { dormant_aging: 0.1 },
            },
            20_000,
            DEFAULT_MC_SEED,
        );
        println!(
            "  {spares:>2} cold spares: P(full capability at EOL) = {:.3}, mean capacity {:.2}/10",
            outcome.full_capability_probability, outcome.mean_final_capacity
        );
    }
}
