//! COTS-vs-rad-hard flight check: does commodity hardware survive a 5-year
//! LEO mission, and what would rad-hard redundancy cost instead?
//!
//! ```text
//! cargo run --example radiation_check
//! ```

use space_udc::compute::hardware;
use space_udc::core::analysis::reliability_cost;
use space_udc::orbital::radiation::{RadiationRegime, TidAssessment};
use space_udc::reliability::tid;
use space_udc::units::{Watts, Years};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lifetime = Years::new(5.0);
    // The paper's CubeSat-heritage mitigation: 400 mil of aluminum drops the
    // LEO dose rate to ~0.2 krad/yr, putting even the GPUs' conservative
    // 2 krad lower qualification bound above the 5-year mission dose.
    println!("== TID survival, 5-year non-polar LEO, 400 mil Al shielding ==");
    for part in hardware::catalog() {
        let a = TidAssessment::assess(
            RadiationRegime::LeoNonPolar,
            400.0,
            lifetime,
            part.tid_tolerance,
        );
        println!(
            "  {:24} tolerance {:>7.2} krad  mission {:>5.2} krad  margin {:>6.1}x  {}",
            part.name,
            a.part_tolerance.value(),
            a.mission_dose.value(),
            a.margin,
            if a.survives_with_margin(1.0) {
                "OK"
            } else {
                "FAILS"
            },
        );
    }

    println!("\n== COTS TID tolerance trend with technology scaling ==");
    for r in tid::dataset() {
        println!(
            "  {:28} {:>5} nm  demonstrates {:>5.0} krad",
            r.name,
            r.node_nm,
            r.demonstrated_tolerance().value()
        );
    }

    println!("\n== TCO of redundancy schemes at 2 kW equivalent compute ==");
    let groups = reliability_cost::redundancy_tco(&[Watts::from_kilowatts(2.0)])?;
    for (scheme, tco) in &groups[0].rows {
        println!("  {:10} {:.3}x baseline TCO", scheme.to_string(), tco);
    }
    println!("\nConclusion: COTS + software hardening wins in LEO, as in the paper.");
    Ok(())
}
