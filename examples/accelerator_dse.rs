//! Extreme heterogeneity: run the full 7 168-point accelerator design-space
//! exploration and translate the energy-efficiency gains into SµDC TCO.
//!
//! ```text
//! cargo run --release --example accelerator_dse
//! ```

use space_udc::accel::dse::{run_full_dse, SystemArchitecture};
use space_udc::core::design::SuDcDesign;
use space_udc::units::Watts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Sweeping the row-stationary accelerator design space...");
    let outcome = run_full_dse();
    println!(
        "  evaluated {} designs; global optimum: {}",
        outcome.designs_evaluated, outcome.global_best
    );

    println!("\n== Energy-efficiency improvement over RTX 3090 (geomean) ==");
    let archs = [
        SystemArchitecture::GlobalAccelerator,
        SystemArchitecture::PerNetworkAccelerator,
        SystemArchitecture::PerLayerAccelerator,
    ];
    for arch in archs {
        println!(
            "  {:26} {:6.1}x",
            arch.to_string(),
            outcome.mean_improvement(arch)
        );
    }

    println!("\n== Per-network best accelerators ==");
    for n in &outcome.networks {
        println!(
            "  {:18} {}  ({:5.1}x over GPU)",
            n.network.to_string(),
            n.best_config,
            n.improvement(SystemArchitecture::PerNetworkAccelerator)
        );
    }

    // Fold the efficiency gains back into the TCO model: an accelerator
    // payload delivers the same work at baseline_power / factor.
    println!("\n== TCO of a 4 kW-equivalent SµDC by payload architecture ==");
    // ISL sized for a representative application mix (the worst-case
    // lightest-app link would dominate once compute power shrinks).
    let four_kw = Watts::from_kilowatts(4.0);
    let gpu_tco = SuDcDesign::builder()
        .compute_power(four_kw)
        .isl_typical()
        .build()?
        .tco()?;
    println!(
        "  Commodity GPU            : {:.1} $M",
        gpu_tco.total().as_millions()
    );
    for arch in archs {
        let factor = outcome.mean_improvement(arch);
        // Accelerators trade FLOPs/$ for FLOPs/W: assume 3x pricier silicon.
        let tco = SuDcDesign::builder()
            .compute_power(four_kw)
            .efficiency_factor(factor)
            .hardware_price_factor(3.0)
            .isl_typical()
            .build()?
            .tco()?;
        println!(
            "  {:25}: {:.1} $M  ({:.0}% reduction)",
            arch.to_string(),
            tco.total().as_millions(),
            100.0 * (1.0 - tco.total() / gpu_tco.total())
        );
    }
    Ok(())
}
