//! Trade study: sweep the power × architecture plane, print the Pareto
//! front, and emit a full design-review document for the winning design.
//!
//! ```text
//! cargo run --release --example trade_study
//! ```

use space_udc::core::analysis::tradespace::{paper_architectures, pareto_front, sweep};
use space_udc::core::report::design_review;
use space_udc::core::scenario::Scenario;
use space_udc::units::Watts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let powers: Vec<Watts> = [0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0]
        .iter()
        .map(|&k| Watts::from_kilowatts(k))
        .collect();
    let points = sweep(&powers, &paper_architectures())?;

    println!("== Trade space: {} design points ==", points.len());
    println!(
        "{:>24} {:>8} {:>10} {:>12}",
        "architecture", "kW", "TCO ($M)", "W per $M"
    );
    for p in &points {
        println!(
            "{:>24} {:>8.1} {:>10.1} {:>12.1}",
            p.architecture,
            p.equivalent_power.as_kilowatts(),
            p.tco.as_millions(),
            p.watts_per_musd
        );
    }

    println!("\n== Pareto front (max equivalent power, min TCO) ==");
    for p in pareto_front(&points) {
        println!(
            "  {:>24} at {:>4.1} kW for {:>6.1} $M",
            p.architecture,
            p.equivalent_power.as_kilowatts(),
            p.tco.as_millions()
        );
    }

    println!("\n== Design review of the accelerated reference scenario ==\n");
    let design = Scenario::ReferenceAccelerated.design()?;
    println!("{}", design_review(&design)?);
    Ok(())
}
