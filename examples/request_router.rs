//! Online request placement: price a live tasking stream across the
//! four execution tiers — onboard flight computer, orbital SµDC,
//! ground-station edge, terrestrial cloud — watch the placement mix
//! invert as offered load outruns the orbit's capacity pools, and
//! replay the routed load through the operations simulator.
//!
//! ```text
//! cargo run --release --example request_router
//! ```

use space_udc::chaos::Campaign;
use space_udc::compute::workloads::suite;
use space_udc::router::{RoutedLoad, Router, RoutingOutcome, StreamConfig, Tier};
use space_udc::sim::DEFAULT_SEED;
use space_udc::units::Seconds;

/// Reference EO capture rate of the 64-satellite fleet, requests/s.
const REFERENCE_ARRIVAL: f64 = 3.83;

fn print_mix(label: &str, out: &RoutingOutcome) {
    let s = &out.stats;
    let pct = |n: u64| 100.0 * n as f64 / s.requests as f64;
    println!("== {label} ==");
    println!(
        "  {} requests: {:.1}% placed, {:.1}% deferred, {:.1}% rejected, {:.1}% shed",
        s.requests,
        pct(s.placed),
        pct(s.deferred),
        pct(s.rejected),
        pct(s.shed)
    );
    for t in Tier::ALL {
        println!(
            "    {:>12}: {:>7} placed",
            t.name(),
            s.tier_counts[t.index()]
        );
    }
    println!(
        "  mean capture-to-insight latency {:.1} s, mean cost ${:.3}/request\n",
        s.mean_latency_s(),
        s.mean_cost_usd()
    );
}

fn main() {
    let router = Router::reference();

    // What each tier charges per Gbit for the first workload: the SµDC's
    // amortized TCO-per-insight is the number to beat.
    let app = 0usize;
    println!(
        "Tier pricing for \"{}\" ($/Gbit of payload):",
        suite()[app].name
    );
    for t in Tier::ALL {
        let terms = &router.config().terms[app][t.index()];
        println!("  {:>12}: {:.3}", t.name(), terms.per_gbit_usd);
    }
    println!();

    // At the reference capture rate the SµDC wins nearly everything.
    let nominal = StreamConfig::new(200_000, DEFAULT_SEED, REFERENCE_ARRIVAL);
    let routed = router.route_stream(&nominal);
    print_mix("reference load (1x)", &routed);

    // At 10,000x the SµDC ingest and ground drain saturate: small
    // payloads overflow to the capturing satellites' flight computers
    // and the rest is rejected.
    let stressed = StreamConfig::new(200_000, DEFAULT_SEED, REFERENCE_ARRIVAL * 1e4);
    print_mix("stressed load (10000x)", &router.route_stream(&stressed));

    // Close the loop: the accepted placements become the simulator's
    // edge-filtering split, nominal and under a solar-storm campaign.
    let duration = Seconds::new(1800.0);
    let load = RoutedLoad::from_outcome(&routed);
    println!(
        "Replaying the 1x placements through sudc-sim ({:.0} s, SµDC share {:.0}%):",
        duration.value(),
        100.0 * load.sudc_share
    );
    let storm = Campaign::solar_storm(duration);
    for report in [
        load.replay(duration, 2, DEFAULT_SEED, None),
        load.replay(duration, 2, DEFAULT_SEED, Some(&storm)),
    ] {
        println!(
            "  {:>12}: {:.1}% of insights inside the {:.0} s SLO, \
             availability {:.1}%, delivery p99 {:.0} s",
            report.campaign,
            100.0 * report.slo_attainment,
            report.slo_deadline_s,
            100.0 * report.mean_availability,
            report.mean_delivery_p99_s
        );
    }
}
