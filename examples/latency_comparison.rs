//! Latency motivation: compare bent-pipe downlink processing against
//! in-space processing for every EO application, and simulate the batch
//! pipeline's latency/energy trade.
//!
//! ```text
//! cargo run --example latency_comparison
//! ```

use space_udc::compute::gpu::GpuEnergyModel;
use space_udc::compute::scheduler::{simulate, BatchPolicy};
use space_udc::compute::workloads;
use space_udc::core::analysis::latency;
use space_udc::units::Seconds;

fn main() {
    println!("== Bent-pipe vs in-space latency (3-station ground network) ==");
    for cmp in latency::latency_table(3) {
        let bent = cmp.bent_pipe.map_or("downlink deficit".to_string(), |l| {
            format!("{:5.1} h", l.value() / 3600.0)
        });
        println!(
            "  {:26} bent-pipe {:18} in-space {:5.1} min  ({})",
            cmp.workload,
            bent,
            cmp.in_space.value() / 60.0,
            cmp.speedup()
                .map_or("bent pipe cannot keep up".into(), |s| format!(
                    "{s:.0}x faster"
                )),
        );
    }

    println!("\n== Batch pipeline simulation: Air Pollution at 6 images/min ==");
    let workload = workloads::by_name("Air Pollution").expect("known workload");
    let model = GpuEnergyModel::fit(&workload);
    let horizon = Seconds::new(6.0 * 3600.0);
    let policies = [
        ("streaming (batch 1)", BatchPolicy::streaming()),
        (
            "energy-minimizing batch",
            BatchPolicy::energy_minimizing(&model, Seconds::new(1800.0)),
        ),
    ];
    for (name, policy) in policies {
        let stats = simulate(&workload, 6.0, horizon, policy);
        println!(
            "  {:24} mean latency {:6.1} min  energy/image {:6.2} J  utilization {:4.1}%",
            name,
            stats.mean_latency.value() / 60.0,
            stats.energy_per_image().value(),
            100.0 * stats.utilization,
        );
    }
    println!("\nBatching trades minutes of latency for a large energy saving —");
    println!("still orders of magnitude faster than waiting for a downlink window.");
}
