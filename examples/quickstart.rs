//! Quickstart: design a 4 kW space microdatacenter and inspect its TCO.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use space_udc::core::design::SuDcDesign;
use space_udc::core::tco::TcoLine;
use space_udc::units::Watts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4 kW SµDC with the paper's defaults: RTX 3090 payload, five-year
    // lifetime, 550 km LEO, ISL sized to saturate the lightest workload.
    let design = SuDcDesign::builder()
        .compute_power(Watts::from_kilowatts(4.0))
        .build()?;

    let sized = design.size()?;
    println!("== 4 kW SµDC physical design ==");
    println!("  servers installed : {}", sized.payload_units);
    println!("  payload mass      : {:.0} kg", sized.payload_mass.value());
    println!("  ISL capacity      : {:.0} Gbit/s", sized.isl_rate.value());
    println!(
        "  radiator area     : {:.1} m²",
        sized.thermal.radiator_area().value()
    );
    println!(
        "  heat-pump power   : {:.0} W",
        sized.thermal.pump_power.value()
    );
    println!(
        "  BOL array power   : {:.1} kW",
        sized.power.bol_array_power().as_kilowatts()
    );
    println!(
        "  dry / wet mass    : {:.0} / {:.0} kg",
        sized.dry_mass.value(),
        sized.wet_mass().value()
    );

    let report = sized.tco();
    println!("\n== Total cost of ownership ==");
    println!(
        "  first unit        : {:.1} $M",
        report.total().as_millions()
    );
    println!(
        "  marginal unit     : {:.1} $M",
        report.marginal_unit().as_millions()
    );
    println!("\n  breakdown:");
    for (line, cost) in report.lines() {
        println!(
            "    {:16} {:6.2} $M  ({:4.1}%)",
            line.to_string(),
            cost.as_millions(),
            100.0 * report.share(line)
        );
    }

    // The paper's headline observations, straight from the model:
    println!("\n== Key insights ==");
    println!(
        "  power+thermal share : {:.1}% (paper: over a third)",
        100.0 * report.power_and_thermal_share()
    );
    println!(
        "  compute hw share    : {:.2}% (paper: < 1%)",
        100.0
            * report.share(TcoLine::Satellite(
                space_udc::sscm::Subsystem::ComputePayload
            ))
    );
    Ok(())
}
