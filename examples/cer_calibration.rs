//! Community calibration: fit the cost model's CERs from observed
//! (driver, cost) data — the workflow an SSCM licensee or mission office
//! would use to replace the shipped synthetic coefficients with real ones.
//!
//! ```text
//! cargo run --example cer_calibration
//! ```

use space_udc::sscm::calibration::{fit_cer, sample_cer, Observation};
use space_udc::sscm::sensitivity::tornado;
use space_udc::sscm::subsystems::SubsystemCers;
use space_udc::sscm::SscmInputs;
use space_udc::units::Usd;

fn main() {
    // 1. Round-trip sanity: the fitter recovers a shipped CER exactly.
    let cers = SubsystemCers::sudc_default();
    let obs = sample_cer(&cers.power.re, &[600.0, 1300.0, 3000.0, 9000.0, 27_000.0]);
    let fit = fit_cer(&obs);
    println!("== Round-trip on the shipped power-subsystem RE CER ==");
    println!(
        "  true exponent {:.3}  fitted {:.3}  (R² = {:.6})",
        cers.power.re.exponent, fit.cer.exponent, fit.r_squared
    );

    // 2. "Community data": a noisy survey of six imaginary programs.
    println!("\n== Fitting a structure CER from (noisy) program data ==");
    let survey = [
        (45.0, 1.1e6),
        (85.0, 1.9e6),
        (120.0, 2.1e6),
        (200.0, 3.2e6),
        (310.0, 3.9e6),
        (520.0, 5.8e6),
    ];
    let observations: Vec<Observation> = survey
        .iter()
        .map(|&(driver, cost)| Observation {
            driver,
            cost: Usd::new(cost),
        })
        .collect();
    let fit = fit_cer(&observations);
    println!(
        "  fitted: {:.2} $M at {:.0} kg reference, exponent {:.3}, R² = {:.3}",
        fit.cer.base.as_millions(),
        fit.cer.reference,
        fit.cer.exponent,
        fit.r_squared
    );
    for &(driver, cost) in &survey {
        println!(
            "  {driver:>6.0} kg: observed {:>4.1} $M  predicted {:>4.1} $M",
            cost / 1e6,
            fit.cer.evaluate(driver).as_millions()
        );
    }

    // 3. Which coefficients matter? The tornado tells a calibrator where to
    //    spend their data-collection effort.
    println!("\n== Where calibration effort pays off (±30% tornado) ==");
    for bar in tornado(&cers, &SscmInputs::reference(), 0.3).iter().take(5) {
        println!(
            "  {:18} swing {:>5.1}% of first-unit cost",
            bar.driver.to_string(),
            100.0 * bar.relative_swing
        );
    }
}
