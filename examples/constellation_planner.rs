//! Constellation planner: size the SµDC fleet for a 64-satellite EO
//! constellation across the paper's ten applications, then quantify the
//! collaborative-compute and distributed-fleet optimizations.
//!
//! ```text
//! cargo run --example constellation_planner
//! ```

use space_udc::compute::workloads;
use space_udc::constellation::{EdgeFiltering, EoConstellation};
use space_udc::core::analysis::fleet;
use space_udc::core::design::SuDcDesign;
use space_udc::units::Watts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let constellation = EoConstellation::reference(64);
    let four_kw = Watts::from_kilowatts(4.0);

    println!("== SµDC demand for a 64-satellite EO constellation ==");
    println!(
        "  aggregate data rate: {:.1} Gbit/s",
        constellation.data_rate().value()
    );
    for w in workloads::suite() {
        let power = constellation.required_compute_power(&w);
        let count = constellation.required_sudcs(&w, four_kw);
        println!(
            "  {:26} needs {:6.2} kW  -> {} x 4 kW SµDC",
            w.name,
            power.as_kilowatts(),
            count
        );
    }

    // Collaborative compute: cloud filtering on the EO satellites discards
    // ~2/3 of frames before they cross the ISL.
    let filtering = EdgeFiltering::cloud_filtering();
    let baseline = SuDcDesign::builder()
        .compute_power(four_kw)
        .build()?
        .tco()?;
    let reduced = SuDcDesign::builder()
        .compute_power(filtering.reduced_compute(four_kw))
        .build()?
        .tco()?;
    println!("\n== Collaborative compute constellation (cloud filtering) ==");
    println!(
        "  baseline SµDC TCO : {:.1} $M",
        baseline.total().as_millions()
    );
    println!(
        "  filtered SµDC TCO : {:.1} $M",
        reduced.total().as_millions()
    );
    println!(
        "  improvement       : {:.2}x",
        baseline.total() / reduced.total()
    );

    // Distributed vs monolithic: reach 32 kW with k SµDCs under Wright's law.
    println!("\n== Distributed vs monolithic (32 kW target) ==");
    let series = fleet::distributed_tco(
        Watts::from_kilowatts(32.0),
        &[1, 2, 3, 4, 6, 8, 12, 16],
        &[0.65, 0.75, 0.85],
    )?;
    for s in &series {
        let best = s
            .points
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty");
        println!(
            "  b = {:.2}: optimal fleet = {:2} SµDCs (relative TCO {:.3})",
            s.progress_ratio, s.optimal_satellites, best.1
        );
    }
    Ok(())
}
