//! Constellation operations simulation: play the paper's reference
//! scenario forward in time with the discrete-event simulator and watch
//! what the steady-state models cannot show — latency percentiles under
//! bursty imaging, backlog across downlink outages, and cold-spare
//! availability.
//!
//! ```text
//! cargo run --release --example constellation_sim
//! ```

use space_udc::reliability::availability::NodePool;
use space_udc::sim::{SimConfig, SimSummary, DEFAULT_SEED};
use space_udc::units::Seconds;

fn print_ops(name: &str, study: &SimSummary) {
    let trace = &study.traces()[0];
    println!("== {name} ==");
    println!(
        "  images: {} captured, {} filtered at the edge, {} processed, {} delivered",
        trace.captured, trace.filtered_out, trace.processed, trace.delivered
    );
    let proc = trace.processing_latency();
    let deliver = trace.delivery_latency();
    println!(
        "  processing latency: p50 {:.1} s, p95 {:.1} s, p99 {:.1} s",
        proc.p50, proc.p95, proc.p99
    );
    println!(
        "  delivery latency:   p50 {:.0} s, p99 {:.0} s (contact-window dominated)",
        deliver.p50, deliver.p99
    );
    println!(
        "  compute: {:.0}% utilized, mean dispatch queue {:.1} images (peak {})",
        100.0 * study.mean_utilization,
        study.mean_batch_queue,
        trace.max_batch_queue()
    );
    println!(
        "  downlink backlog: mean {:.0} insights (peak {}), {:.0} insights/h delivered\n",
        study.mean_downlink_backlog,
        trace.max_downlink_backlog(),
        study.mean_delivered_per_hour
    );
}

fn main() {
    let duration = Seconds::new(4.0 * 3600.0);
    let reps = 3;

    println!("Simulating 4 h of 64-satellite EO operations ({reps} replications)...\n");
    let baseline = SimSummary::study(
        &SimConfig::reference_operations(duration),
        reps,
        DEFAULT_SEED,
    );
    let collab = SimSummary::study(
        &SimConfig::collaborative_operations(duration),
        reps,
        DEFAULT_SEED,
    );
    print_ops("Baseline (no edge filtering)", &baseline);
    print_ops("Collaborative constellation (cloud filtering)", &collab);
    println!(
        "Filtering cuts the p99 processing latency {:.1}x and the mean dispatch queue {:.0}x.\n",
        baseline.mean_processing_p99 / collab.mean_processing_p99,
        baseline.mean_batch_queue / collab.mean_batch_queue
    );

    println!("== Cold-spare mission availability (20 nodes / 10 required, 1 MTTF) ==");
    let mission = SimSummary::study(
        &SimConfig::cold_spare_mission(20, 10, 0.1, 1.0),
        100,
        DEFAULT_SEED,
    );
    let analytic_hot = NodePool::new(20, 10).availability(1.0);
    println!(
        "  end-state full capability: {:.1}% simulated (cold spares, 10% dormant aging)",
        100.0 * mission.end_full_fraction
    );
    println!(
        "  analytic hot-pool bound:   {:.1}% (all 20 powered from day one)",
        100.0 * analytic_hot
    );
    println!(
        "  mean failures per mission: {:.1}, promotions: {:.1}",
        mission
            .traces()
            .iter()
            .map(|t| t.failures as f64)
            .sum::<f64>()
            / mission.traces().len() as f64,
        mission
            .traces()
            .iter()
            .map(|t| t.promotions as f64)
            .sum::<f64>()
            / mission.traces().len() as f64,
    );
}
