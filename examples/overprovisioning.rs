//! Near-zero-cost overprovisioning: quantify how cold spares improve SµDC
//! availability (analytic + Monte-Carlo) and what they cost.
//!
//! ```text
//! cargo run --example overprovisioning
//! ```

use space_udc::core::design::SuDcDesign;
use space_udc::reliability::availability::{NodePool, DEFAULT_MC_SEED};
use space_udc::units::Watts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ten powered servers; overprovision with 0/10/20 cold spares.
    println!("== Availability vs overprovisioning (10 powered servers) ==");
    println!(
        "{:>6} {:>14} {:>18} {:>14}",
        "n", "median degr.", "99% degradation", "MC check @1T"
    );
    for n in [10u32, 15, 20, 30] {
        let pool = NodePool::new(n, 10);
        let median = pool.median_degradation_time();
        let p99 = pool.time_to_availability(0.01);
        let mc = pool.simulate_availability(1.0, 50_000, DEFAULT_MC_SEED);
        let analytic = pool.availability(1.0);
        println!("{n:>6} {median:>12.2} T {p99:>16.2} T {mc:>7.3}~{analytic:<.3}");
    }

    // What do the spares cost? Nearly nothing: they draw no power, so only
    // hardware price and a little mass move.
    println!("\n== TCO impact of carrying 20 cold spares (4 kW SµDC) ==");
    let base = SuDcDesign::builder()
        .compute_power(Watts::from_kilowatts(4.0))
        .build()?
        .tco()?;
    let spared = SuDcDesign::builder()
        .compute_power(Watts::from_kilowatts(4.0))
        .spares(20)
        .build()?
        .tco()?;
    println!("  without spares : {:.2} $M", base.total().as_millions());
    println!("  with 20 spares : {:.2} $M", spared.total().as_millions());
    println!(
        "  overhead       : {:.2}% of TCO",
        100.0 * (spared.total() / base.total() - 1.0)
    );
    Ok(())
}
